"""Shmem backend internals: ring protocol, p2p semantics, failure handling.

The generic point-to-point/collective semantics are asserted for the
thread backend in ``test_runtime.py`` and for the pipe transport in
``test_process_backend.py``; this file re-asserts the same contract over
the shared-memory ring transport and covers what only exists there — the
SPSC ring protocol (wrap padding, oversize chunking, drain), the
doorbell-EOF failure path, and zero-copy in-place decoding.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.runtime import RankError, Trace, run_ranks
from repro.runtime.shmem_backend import ShmemBackend, SharedRing
from repro.runtime.wire import encode_frame_parts
from repro.streams import SparseStream

BACKEND = "shmem"

_NO_ABORT = lambda: False  # noqa: E731


@pytest.fixture
def ring():
    r = SharedRing(4096, mp.get_context())
    yield r
    r.close_doorbell()
    r.close()
    r.unlink()


def _read_one(ring):
    got = []
    status = ring.try_read_frame(lambda view: got.append(bytes(view)), _NO_ABORT)
    return status, got


class TestSharedRing:
    def test_capacity_rounds_to_power_of_two(self):
        ctx = mp.get_context()
        r = SharedRing(5000, ctx)
        try:
            assert r.capacity == 8192
        finally:
            r.close_doorbell()
            r.close()
            r.unlink()

    def test_frame_round_trip(self, ring):
        assert ring.write([b"hello ", b"world"], 11, _NO_ABORT)
        status, got = _read_one(ring)
        assert status == "ok" and got == [b"hello world"]
        assert ring.avail() == 0

    def test_empty_ring_reports_empty(self, ring):
        status, got = _read_one(ring)
        assert status == "empty" and got == []

    def test_fifo_many_frames(self, ring):
        for i in range(16):
            assert ring.write([bytes([i]) * 10], 10, _NO_ABORT)
        frames = []
        while True:
            status = ring.try_read_frame(lambda v: frames.append(bytes(v)), _NO_ABORT)
            if status == "empty":
                break
        assert frames == [bytes([i]) * 10 for i in range(16)]

    def test_wrap_around_with_pad_marker(self, ring):
        """Frames stay contiguous across many wraps of a small ring."""
        payload = bytes(range(256)) * 3  # 768 bytes; 4096-byte ring wraps often
        for i in range(50):
            assert ring.write([payload], len(payload), _NO_ABORT)
            status, got = _read_one(ring)
            assert status == "ok" and got == [payload], f"iteration {i}"

    def test_oversize_frame_chunks_through(self, ring):
        """A frame larger than the whole ring streams through in chunks."""
        import threading

        big = (np.arange(5000, dtype=np.int32) % 251).astype(np.uint8).tobytes() * 4
        assert len(big) > ring.capacity
        consumer_got = []

        def consumer():
            # the writer blocks on the full ring until the reader drains,
            # so consumption must run concurrently with the write
            while True:
                status = ring.try_read_frame(
                    lambda v: consumer_got.append(bytes(v)), _NO_ABORT
                )
                if status == "ok":
                    return
                time.sleep(0.001)

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        assert ring.write([big], len(big), _NO_ABORT)
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert consumer_got == [big]

    def test_drain_discards_everything(self, ring):
        ring.write([b"x" * 100], 100, _NO_ABORT)
        ring.write([b"y" * 100], 100, _NO_ABORT)
        ring.drain()
        status, got = _read_one(ring)
        assert status == "empty" and got == []

    def test_writer_abort_on_full_ring(self, ring):
        """A blocked writer observes the abort flag instead of hanging."""
        payload = b"z" * 2048
        assert ring.write([payload], len(payload), _NO_ABORT)
        aborted = {"n": 0}

        def abort_soon():
            aborted["n"] += 1
            return aborted["n"] > 3

        assert not ring.write([payload, payload], 4096, abort_soon)

    def test_encode_frame_parts_write(self, ring):
        """Vectored stream encode lands in the ring without staging blobs."""
        s = SparseStream(1000, indices=[1, 2, 500], values=[1.0, -2.0, 3.5])
        total, parts = encode_frame_parts(5, 0, s.nbytes_payload, s)
        assert ring.write(parts, total, _NO_ABORT)
        from repro.runtime.wire import decode_message

        frames = []
        ring.try_read_frame(lambda v: frames.append(decode_message(v)), _NO_ABORT)
        tag, seq, nbytes, epoch, out = frames[0]
        assert (tag, seq, nbytes, epoch) == (5, 0, s.nbytes_payload, 0)
        assert np.array_equal(out.indices, s.indices)
        assert np.array_equal(out.values, s.values)


class TestShmemPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), 1, tag=7)
                return None
            return comm.recv(0, tag=7)

        out = run_ranks(prog, 2, backend=BACKEND)
        assert np.array_equal(out[1], np.arange(5))

    def test_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(20)]

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == list(range(20))

    def test_tags_do_not_cross(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == ("a", "b")

    def test_large_payload_exchange_no_deadlock(self):
        """Simultaneous multi-MB sendrecv must not deadlock on ring capacity:
        a sender blocked on a full ring drives the progress engine itself."""
        def prog(comm):
            peer = 1 - comm.rank
            big = np.full(1 << 20, float(comm.rank), dtype=np.float64)  # 8 MB
            got = comm.sendrecv(big, peer, tag=2)
            return float(got[0])

        out = run_ranks(prog, 2, backend=BACKEND, timeout=60.0)
        assert out[0] == 1.0 and out[1] == 0.0

    def test_late_large_send_to_finished_rank_completes(self):
        """Buffered-send contract: an unmatched multi-MB send to a rank that
        already exited must still complete (the parent drains its rings)."""
        def prog(comm):
            if comm.rank == 0:
                return "done-early"  # exits immediately, never receives
            time.sleep(0.3)  # let rank 0 finish first
            big = np.zeros(1 << 18, dtype=np.float64)  # 2 MB >> ring capacity
            comm.send(big, 0, tag=5)
            return "sent"

        out = run_ranks(prog, 2, backend=BACKEND, timeout=30.0)
        assert out.results == ["done-early", "sent"]

    def test_cross_process_isolation_is_physical(self):
        """Receiver mutations cannot reach the sender: separate address
        spaces, and decoded arrays are copies out of the shared ring."""
        def prog(comm):
            arr = np.zeros(4)
            if comm.rank == 0:
                comm.send(arr, 1)
                comm.recv(1, tag=9)  # sync
                return float(arr[0])
            got = comm.recv(0)
            got[0] = 99.0
            comm.send(0, 0, tag=9)
            return None

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[0] == 0.0

    def test_decoded_stream_is_writable(self):
        """Streams decoded out of the ring own their buffers (receivers may
        reduce into them in place)."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(SparseStream(100, indices=[3], values=[1.0]), 1)
                return None
            s = comm.recv(0)
            s.values[0] = 42.0  # must not raise (not a read-only ring view)
            return float(s.values[0])

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == 42.0

    def test_negative_tags_rejected(self):
        def sender(comm):
            if comm.rank == 0:
                comm.send(b"x", 1, tag=-1)
            else:
                comm.recv(0, tag=-1)

        with pytest.raises(RankError) as exc_info:
            run_ranks(sender, 2, backend=BACKEND)
        assert isinstance(exc_info.value.original, ValueError)
        assert "non-negative" in str(exc_info.value.original)

    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                handle = comm.isend(42, 1)
                assert handle.test()
                handle.wait()
                return None
            handle = comm.irecv(0)
            return handle.wait()

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == 42

    def test_probe_drives_progress(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("ping", 1, tag=4)
                return comm.recv(1, tag=5)
            handle = comm.irecv(0, tag=4)
            deadline = time.monotonic() + 10.0
            while not handle.test():
                assert time.monotonic() < deadline, "probe never saw the message"
                time.sleep(0.001)
            comm.send("pong", 0, tag=5)
            return handle.wait()

        out = run_ranks(prog, 2, backend=BACKEND, timeout=30.0)
        assert out.results == ["pong", "ping"]


class TestShmemCollectiveHelpers:
    @pytest.mark.parametrize("nranks", [2, 3, 5, 8])
    def test_barrier_completes(self, nranks):
        out = run_ranks(lambda comm: (comm.barrier(), comm.rank)[1], nranks, backend=BACKEND)
        assert out.results == list(range(nranks))

    @pytest.mark.parametrize("nranks,root", [(2, 0), (5, 2), (8, 7)])
    def test_bcast(self, nranks, root):
        def prog(comm):
            value = f"payload-{comm.rank}" if comm.rank == root else None
            return comm.bcast(value, root=root)

        out = run_ranks(prog, nranks, backend=BACKEND)
        assert all(v == f"payload-{root}" for v in out.results)

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_gather_to_root(self, nranks):
        out = run_ranks(
            lambda comm: comm.gather_to_root(comm.rank * 2, root=0), nranks, backend=BACKEND
        )
        assert out[0] == [2 * r for r in range(nranks)]
        assert all(out[r] is None for r in range(1, nranks))


class TestShmemFailureHandling:
    def test_rank_error_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1)  # would deadlock without abort

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 2, backend=BACKEND)
        assert exc_info.value.rank == 1
        assert isinstance(exc_info.value.original, ValueError)

    def test_blocked_ranks_abort_not_deadlock(self):
        start = time.monotonic()

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("fail fast")
            comm.recv(0)

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 4, backend=BACKEND)
        assert exc_info.value.rank == 0
        assert time.monotonic() - start < 30.0

    def test_timeout_detects_deadlock(self):
        def prog(comm):
            comm.recv(1 - comm.rank)  # mutual recv: classic deadlock

        with pytest.raises(TimeoutError):
            run_ranks(prog, 2, backend=BACKEND, timeout=1.0)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_ranks(lambda c: None, 0, backend=BACKEND)

    def test_hard_death_aborts_blocked_peer(self):
        """A rank that dies without reporting (os._exit) closes its
        doorbells; blocked peers observe EOF and the run raises."""
        import os as _os

        def prog(comm):
            if comm.rank == 1:
                _os._exit(3)  # dies without reporting anything
            comm.recv(1)

        with pytest.raises(RankError, match="process died"):
            run_ranks(prog, 2, backend=BACKEND, timeout=30.0)

    def test_unpicklable_exception_still_reported(self):
        def prog(comm):
            class Local(Exception):  # unpicklable: defined inside a function
                pass

            raise Local("opaque failure")

        with pytest.raises(RankError, match="opaque failure"):
            run_ranks(prog, 2, backend=BACKEND)


class TestShmemTrace:
    def test_send_recv_events_match(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float32), 1)
            else:
                comm.recv(0)

        out = run_ranks(prog, 2, backend=BACKEND)
        sends = [e for e in out.trace.events(0) if e.op == "send"]
        recvs = [e for e in out.trace.events(1) if e.op == "recv"]
        assert len(sends) == len(recvs) == 1
        assert sends[0].nbytes == recvs[0].nbytes == 48
        assert sends[0].seq == recvs[0].seq

    def test_accumulating_trace_rebases_seqs(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)
            else:
                comm.recv(0, tag=4)

        trace = Trace(2)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        sends = [e for e in trace.events(0) if e.op == "send"]
        assert [e.seq for e in sends] == [0, 1]

    def test_failure_keeps_partial_trace_like_other_backends(self):
        def failing(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=2)
                raise ValueError("die")
            comm.recv(0, tag=2)

        counts = {}
        for backend in ("thread", BACKEND):
            t = Trace(2)
            with pytest.raises(RankError):
                run_ranks(failing, 2, trace=t, backend=backend)
            counts[backend] = sum(len(events) for events in t)
        assert counts[BACKEND] == counts["thread"] > 0

    def test_world_metadata(self):
        out = run_ranks(lambda c: c.rank, 3, backend=BACKEND)
        assert out.world.size == 3
        assert len(out.world.pids) == 3
        assert out.world.ring_capacity >= 4096


class TestRingCapacityConfig:
    def test_custom_ring_capacity(self):
        """Tiny rings still move big messages (chunked path end to end)."""
        backend = ShmemBackend(ring_capacity=4096)

        def prog(comm):
            peer = 1 - comm.rank
            payload = np.arange(65536, dtype=np.float32)  # 256 KB >> 4 KB ring
            got = comm.sendrecv(payload, peer, tag=1)
            return float(got.sum())

        out = run_ranks(prog, 2, backend=backend, timeout=60.0)
        expected = float(np.arange(65536, dtype=np.float32).sum())
        assert out[0] == expected and out[1] == expected
