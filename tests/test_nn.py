"""Tests for the NN substrate: layer backprop vs finite differences,
flat-parameter plumbing, and basic training behaviour."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LSTMClassifier,
    ReLU,
    Sequential,
    Tanh,
    make_cnn_lite,
    make_lstm,
    make_mlp,
    softmax_cross_entropy,
)


def numeric_grad_check(net, x, y, n_probe=20, eps=1e-6, atol=5e-7, seed=0):
    """Central-difference check of net.batch_grad on random coordinates."""
    p0 = net.param_vector()
    _, grad = net.batch_grad(x, y)
    gen = np.random.default_rng(seed)
    for i in gen.choice(p0.size, size=min(n_probe, p0.size), replace=False):
        p = p0.copy()
        p[i] += eps
        net.set_param_vector(p)
        lp = net.loss_and_grad(x, y)
        p[i] -= 2 * eps
        net.set_param_vector(p)
        lm = net.loss_and_grad(x, y)
        numeric = (lp - lm) / (2 * eps)
        assert numeric == pytest.approx(grad[i], abs=atol), f"coordinate {i}"
    net.set_param_vector(p0)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits(self):
        loss, _ = softmax_cross_entropy(np.zeros((4, 10)), np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((6, 5))
        _, dlogits = softmax_cross_entropy(logits, rng.integers(0, 5, 6))
        assert np.allclose(dlogits.sum(axis=1), 0.0, atol=1e-12)

    def test_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        y = np.array([0, 1, 2])
        l1, _ = softmax_cross_entropy(logits, y)
        l2, _ = softmax_cross_entropy(logits + 100.0, y)
        assert l1 == pytest.approx(l2, abs=1e-9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(4), np.zeros(1, dtype=int))


class TestLayerGradients:
    def test_dense_relu_mlp(self, rng):
        net = make_mlp(10, 3, hidden=(7,), seed=1)
        numeric_grad_check(net, rng.standard_normal((4, 10)), rng.integers(0, 3, 4))

    def test_tanh(self, rng):
        gen = np.random.default_rng(3)
        net = Sequential([Dense(6, 5, gen), Tanh(), Dense(5, 3, gen)])
        numeric_grad_check(net, rng.standard_normal((3, 6)), rng.integers(0, 3, 3))

    def test_conv2d(self, rng):
        net = make_cnn_lite(8, 2, 4, channels=(3,), seed=2)
        x = rng.standard_normal((2, 2, 8, 8))
        numeric_grad_check(net, x, rng.integers(0, 4, 2), n_probe=25)

    def test_conv2d_stride_one_with_pad(self, rng):
        gen = np.random.default_rng(5)
        net = Sequential([Conv2D(1, 2, 3, gen, stride=1, pad=1), Flatten(), Dense(2 * 36, 2, gen)])
        x = rng.standard_normal((2, 1, 6, 6))
        numeric_grad_check(net, x, rng.integers(0, 2, 2), n_probe=20)

    def test_lstm(self, rng):
        net = make_lstm(15, 3, embed_dim=5, hidden_dim=6, seed=4)
        toks = rng.integers(0, 15, (3, 7))
        numeric_grad_check(net, toks, rng.integers(0, 3, 3), n_probe=30)


class TestLayers:
    def test_relu_masks_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])
        back = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(back, [[0.0, 5.0]])

    def test_dropout_eval_mode_identity(self, rng):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = rng.standard_normal((4, 8))
        assert np.array_equal(layer.forward(x, train=False), x)

    def test_dropout_scales_at_train(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((100, 100))
        out = layer.forward(x, train=True)
        # inverted dropout preserves the expectation
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 12)
        assert layer.backward(out).shape == (2, 3, 4)

    def test_conv_output_shape(self, rng):
        conv = Conv2D(3, 8, 3, np.random.default_rng(1), stride=2, pad=1)
        out = conv.forward(rng.standard_normal((2, 3, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_channel_mismatch(self, rng):
        conv = Conv2D(3, 8, 3, np.random.default_rng(1))
        with pytest.raises(ValueError):
            conv.forward(rng.standard_normal((1, 2, 8, 8)))

    def test_conv_too_small_input(self, rng):
        conv = Conv2D(1, 1, 5, np.random.default_rng(1))
        with pytest.raises(ValueError):
            conv.forward(rng.standard_normal((1, 1, 3, 3)))

    def test_backward_before_forward_asserts(self):
        with pytest.raises(AssertionError):
            ReLU().backward(np.ones((1, 2)))


class TestFlatParameters:
    def test_roundtrip(self, rng):
        net = make_mlp(8, 4, hidden=(6,), seed=3)
        vec = net.param_vector()
        net.set_param_vector(np.zeros_like(vec))
        assert np.allclose(net.param_vector(), 0.0)
        net.set_param_vector(vec)
        assert np.allclose(net.param_vector(), vec)

    def test_n_params_consistent(self):
        net = make_mlp(8, 4, hidden=(6,), seed=3)
        assert net.param_vector().size == net.n_params
        assert net.grad_vector().size == net.n_params

    def test_wrong_size_rejected(self):
        net = make_mlp(8, 4, hidden=(6,), seed=3)
        with pytest.raises(ValueError):
            net.set_param_vector(np.zeros(3))

    def test_width_multiplier_grows_params(self):
        base = make_mlp(32, 10, hidden=(64,), width_multiplier=1, seed=0)
        wide = make_mlp(32, 10, hidden=(64,), width_multiplier=4, seed=0)
        assert wide.n_params > 3 * base.n_params

    def test_lstm_flat_roundtrip(self, rng):
        net = make_lstm(20, 4, embed_dim=6, hidden_dim=8, seed=5)
        vec = net.param_vector()
        net.set_param_vector(vec * 2)
        assert np.allclose(net.param_vector(), vec * 2)

    def test_seeded_factories_identical(self):
        a = make_mlp(16, 4, seed=9).param_vector()
        b = make_mlp(16, 4, seed=9).param_vector()
        assert np.array_equal(a, b)


class TestTrainingBehaviour:
    def test_mlp_learns_blobs(self, rng):
        from repro.mlopt import make_dense_classification

        ds = make_dense_classification(256, 32, 4, seed=6, class_separation=4.0)
        net = make_mlp(32, 4, hidden=(32,), seed=1)
        p = net.param_vector()
        gen = np.random.default_rng(0)
        for _ in range(150):
            rows = gen.choice(256, 32, replace=False)
            net.set_param_vector(p)
            _, g = net.batch_grad(ds.X[rows], ds.y[rows])
            p -= 0.1 * g
        net.set_param_vector(p)
        assert net.accuracy(ds.X, ds.y) > 0.9

    def test_lstm_learns_triggers(self):
        from repro.mlopt import make_sequence_task

        ds = make_sequence_task(n_samples=192, seq_len=8, vocab_size=40, n_classes=3, seed=8)
        net = make_lstm(40, 3, embed_dim=12, hidden_dim=16, seed=2)
        p = net.param_vector()
        gen = np.random.default_rng(1)
        for _ in range(120):
            rows = gen.choice(192, 24, replace=False)
            net.set_param_vector(p)
            _, g = net.batch_grad(ds.tokens[rows], ds.y[rows])
            p -= 0.5 * g
        net.set_param_vector(p)
        assert net.accuracy(ds.tokens, ds.y) > 0.8

    def test_lstm_token_out_of_range(self):
        net = make_lstm(10, 2, seed=0)
        with pytest.raises(IndexError):
            net.forward(np.array([[11]]))

    def test_lstm_invalid_dims(self):
        with pytest.raises(ValueError):
            LSTMClassifier(0, 4, 4, 2, np.random.default_rng(0))
