"""Fault injection and typed failure surfacing, pinned on all four backends.

The acceptance contract of the fault harness:

* a killed rank makes every *surviving* rank raise
  :class:`RankFailedError` naming the dead rank — on thread, process,
  shmem and socket alike;
* a dropped message plus ``op_timeout=`` raises :class:`CommTimeoutError`
  (a typed, attributed error — not a hang, not a bare ``RuntimeError``);
* injected delays never change results (bit-identical to fault-free);
* the same :class:`FaultPlan` seed reproduces the same failure sequence.

Plus the satellite regressions: typed rendezvous errors, abort surfacing
from ``DeferredRecvHandle.test()``, and ``split`` color validation.
"""

import pickle
import socket as socketlib
import threading

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import FaultPlan, dense_allreduce
from repro.collectives import dsar_hierarchical, ssar_hierarchical
from repro.runtime import (
    AbortState,
    CommTimeoutError,
    FaultyBackend,
    RankError,
    RankFailedError,
    RankKilledError,
    RendezvousError,
    RendezvousTimeoutError,
    ThreadWorld,
    WorldAbortedError,
    available_backends,
    get_backend,
    i_collective,
    run_ranks,
)
from repro.runtime import socket_backend as sb

from conftest import make_rank_stream

BACKENDS = ["thread", "process", "shmem", "socket"]
NB_BACKENDS = ["thread", "process"]  # where i_collective is supported


# ----------------------------------------------------------------------
# FaultPlan: pure, deterministic decisions
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_same_seed_same_sequence(self):
        a = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.2)
        b = FaultPlan(seed=42, drop_rate=0.3, delay_rate=0.2)
        seq = [a.action(0, 1, 3, s) for s in range(200)]
        assert seq == [b.action(0, 1, 3, s) for s in range(200)]
        # non-trivial plans exercise every branch
        assert {act for act, _ in seq} == {"drop", "delay", "pass"}

    def test_different_seed_different_sequence(self):
        a = FaultPlan(seed=1, drop_rate=0.5)
        b = FaultPlan(seed=2, drop_rate=0.5)
        assert [a.action(0, 1, 0, s) for s in range(64)] != [
            b.action(0, 1, 0, s) for s in range(64)
        ]

    def test_rates_are_respected(self):
        plan = FaultPlan(seed=7, drop_rate=0.25)
        drops = sum(plan.action(0, 1, 0, s)[0] == "drop" for s in range(2000))
        assert 0.18 < drops / 2000 < 0.32  # keyed-hash uniform ~ Binomial

    def test_explicit_keys_override_rates(self):
        plan = FaultPlan(drops=frozenset({(0, 1, 5, 0)}), delays={(1, 0, 5, 2): 0.5})
        assert plan.action(0, 1, 5, 0) == ("drop", 0.0)
        assert plan.action(1, 0, 5, 2) == ("delay", 0.5)
        assert plan.action(0, 1, 5, 1) == ("pass", 0.0)

    def test_kills(self):
        plan = FaultPlan(kill_rank=2, kill_after_ops=5)
        assert not plan.kills(2, 4)
        assert plan.kills(2, 5)
        assert plan.kills(2, 6)
        assert not plan.kills(1, 99)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.7, delay_rate=0.7)
        with pytest.raises(ValueError):
            FaultPlan(delay_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(kill_after_ops=0)

    def test_from_spec(self):
        plan = FaultPlan.from_spec("seed=7,drop=0.02,delay=0.1/0.005,kill=2@40")
        assert plan.seed == 7
        assert plan.drop_rate == 0.02
        assert plan.delay_rate == 0.1
        assert plan.delay_s == 0.005
        assert plan.kill_rank == 2
        assert plan.kill_after_ops == 40
        assert FaultPlan.from_spec("kill=1").kill_after_ops == 1
        assert FaultPlan.from_spec("delay=0.5").delay_s == FaultPlan().delay_s

    @pytest.mark.parametrize("spec", ["frobnicate=1", "drop", "drop=x", "kill=a@b"])
    def test_from_spec_rejects_garbage(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)

    def test_describe_mentions_every_clause(self):
        text = FaultPlan.from_spec("seed=3,drop=0.1,kill=1@9").describe()
        assert "seed=3" in text and "drop=0.1" in text and "kill=1@9" in text

    def test_revive_clause(self):
        plan = FaultPlan.from_spec("kill=2@40,revive=2@80")
        assert plan.revive_rank == 2
        assert plan.revive_after_ops == 80
        assert not plan.revives(79)
        assert plan.revives(80)
        assert "revive=2@80" in plan.describe()

    def test_revive_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(revive_rank=1)  # no kill to revive from
        with pytest.raises(ValueError):
            FaultPlan(kill_rank=1, kill_after_ops=40, revive_rank=2, revive_after_ops=80)
        with pytest.raises(ValueError):
            # revive must land after the kill
            FaultPlan(kill_rank=1, kill_after_ops=40, revive_rank=1, revive_after_ops=40)

    def test_pinned_clauses_round_trip(self):
        plan = FaultPlan(
            drops=frozenset({(0, 1, 5, 0), (2, 3, 7, 9)}),
            delays={(1, 0, 5, 2): 0.5},
        )
        text = plan.describe()
        assert "pindrop=0:1:5:0" in text
        assert "pindelay=1:0:5:2/0.5" in text
        assert FaultPlan.from_spec(text) == plan


_message_keys = st.tuples(
    st.integers(0, 7), st.integers(0, 7), st.integers(0, 99), st.integers(0, 999)
)


@st.composite
def _fault_plans(draw):
    """Any *representable* plan: trigger thresholds (``kill_after_ops`` /
    ``revive_after_ops``) without their rank are inert and deliberately
    not emitted by ``describe``, so the strategy never builds them."""
    kill = draw(st.none() | st.tuples(st.integers(0, 7), st.integers(1, 500)))
    kwargs = {
        "seed": draw(st.integers(-(2**31), 2**31)),
        "drop_rate": draw(st.floats(0.0, 0.5, allow_nan=False)),
        "delay_rate": draw(st.floats(0.0, 0.5, allow_nan=False)),
        "delay_s": draw(st.floats(0.0, 1.0, allow_nan=False)),
        "drops": frozenset(draw(st.sets(_message_keys, max_size=3))),
        "delays": draw(
            st.dictionaries(_message_keys, st.floats(0.0, 1.0, allow_nan=False), max_size=3)
        ),
    }
    if kill is not None:
        kwargs["kill_rank"], kwargs["kill_after_ops"] = kill
        if draw(st.booleans()):
            kwargs["revive_rank"] = kill[0]
            kwargs["revive_after_ops"] = kill[1] + draw(st.integers(1, 500))
    return FaultPlan(**kwargs)


class TestFaultPlanSpecRoundTrip:
    @given(plan=_fault_plans())
    def test_round_trip(self, plan):
        assert FaultPlan.from_spec(plan.describe()) == plan


# ----------------------------------------------------------------------
# typed error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_rank_failed_is_world_aborted(self):
        err = RankFailedError(3)
        assert isinstance(err, WorldAbortedError)
        assert err.rank == 3
        assert "rank 3" in str(err)

    def test_comm_timeout_is_timeout(self):
        err = CommTimeoutError("slow", source=1, tag=5, timeout=0.5)
        assert isinstance(err, TimeoutError)
        assert not isinstance(err, WorldAbortedError)
        assert (err.source, err.tag, err.timeout) == (1, 5, 0.5)

    def test_rendezvous_family(self):
        assert issubclass(RendezvousError, RuntimeError)
        assert issubclass(RendezvousTimeoutError, RendezvousError)
        assert issubclass(RendezvousTimeoutError, TimeoutError)

    @pytest.mark.parametrize(
        "err",
        [
            RankFailedError(7),
            RankFailedError(2, "custom message"),
            CommTimeoutError("late", source=0, tag=9, timeout=1.5),
        ],
    )
    def test_pickle_roundtrip(self, err):
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is type(err)
        assert str(clone) == str(err)
        assert clone.__dict__ == err.__dict__

    def test_abort_state_first_failure_wins(self):
        state = AbortState()
        assert isinstance(state.error(), WorldAbortedError)
        state.set(failed_rank=4)
        state.set(failed_rank=9)  # later attribution must not overwrite
        state.set()
        err = state.error()
        assert isinstance(err, RankFailedError)
        assert err.rank == 4


# ----------------------------------------------------------------------
# registry: the faulty:<inner> wrapper spec
# ----------------------------------------------------------------------
class TestFaultyBackendRegistry:
    def test_registered(self):
        assert "faulty" in available_backends()

    @pytest.mark.parametrize("inner", BACKENDS)
    def test_wrapper_spec_resolves(self, inner):
        backend = get_backend(f"faulty:{inner}")
        assert isinstance(backend, FaultyBackend)
        assert backend.name == f"faulty:{inner}"
        assert backend.inner.name == inner

    def test_bare_name_defaults_to_thread(self):
        assert get_backend("faulty").inner.name == "thread"

    def test_unknown_inner_rejected(self):
        with pytest.raises(ValueError):
            get_backend("faulty:warp-drive")

    def test_unknown_wrapper_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("bogus:thread")

    def test_with_plan_returns_fresh_wrapper(self):
        base = get_backend("faulty:thread")
        planned = base.with_plan(FaultPlan(seed=5))
        assert planned is not base
        assert planned.plan.seed == 5
        assert base.plan.seed == 0


# ----------------------------------------------------------------------
# kill: every survivor raises RankFailedError naming the dead rank
# ----------------------------------------------------------------------
def _survivor_prog(comm):
    try:
        return dense_allreduce(comm, np.full(8, float(comm.rank + 1)))
    except RankFailedError as exc:
        return ("failed", exc.rank)


class TestKilledRank:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_survivors_learn_the_dead_rank(self, backend):
        nranks, victim = 3, 1
        with pytest.raises(RankError) as ei:
            run_ranks(
                _survivor_prog,
                nranks,
                backend=backend,
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=1),
            )
        err = ei.value
        cause = err.__cause__
        # the world-level error is attributed to the victim...
        assert isinstance(cause, (RankFailedError, RankKilledError))
        assert cause.rank == victim
        # ...and every surviving rank observed RankFailedError naming it
        assert err.partial_results is not None
        for rank, value in enumerate(err.partial_results):
            if rank == victim:
                assert value is None
            else:
                assert value == ("failed", victim)

    def test_thread_kill_raises_instead_of_exiting(self):
        # thread ranks share the pytest process: the kill must unwind, not
        # os._exit, and still attribute the abort to the victim
        with pytest.raises(RankError) as ei:
            run_ranks(
                _survivor_prog,
                2,
                backend="thread",
                fault_plan=FaultPlan(kill_rank=0, kill_after_ops=1),
            )
        assert isinstance(ei.value.__cause__, RankKilledError)
        assert ei.value.__cause__.rank == 0


# ----------------------------------------------------------------------
# drop + op_timeout: typed CommTimeoutError, fast, never a hang
# ----------------------------------------------------------------------
def _p2p_prog(comm):
    if comm.rank == 0:
        comm.send(np.arange(4.0), dest=1, tag=5)
        return "sent"
    return comm.recv(source=0, tag=5)


class TestDroppedMessage:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drop_raises_comm_timeout(self, backend):
        plan = FaultPlan(drops=frozenset({(0, 1, 5, 0)}))
        with pytest.raises(RankError) as ei:
            run_ranks(_p2p_prog, 2, backend=backend, fault_plan=plan, op_timeout=0.75)
        cause = ei.value.__cause__
        assert isinstance(cause, CommTimeoutError)
        assert type(cause) is not RuntimeError  # typed, not bare
        assert cause.source == 0
        assert cause.tag == 5
        assert cause.timeout == 0.75
        assert "op_timeout" in str(cause)

    def test_no_timeout_no_spurious_failure(self):
        # op_timeout generous, nothing dropped: the same program completes
        out = run_ranks(_p2p_prog, 2, backend="thread", op_timeout=30.0)
        assert out[0] == "sent"
        np.testing.assert_array_equal(out[1], np.arange(4.0))


# ----------------------------------------------------------------------
# delays: pure jitter, results bit-identical to the fault-free run
# ----------------------------------------------------------------------
def _allreduce_prog(comm):
    rng = np.random.default_rng(31 + comm.rank)
    return dense_allreduce(comm, rng.standard_normal(64))


class TestDelaysAreHarmless:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_under_jitter(self, backend):
        clean = run_ranks(_allreduce_prog, 3, backend=backend)
        jittered = run_ranks(
            _allreduce_prog,
            3,
            backend=backend,
            fault_plan=FaultPlan(seed=11, delay_rate=1.0, delay_s=0.0005),
        )
        for r in range(3):
            np.testing.assert_array_equal(clean[r], jittered[r])


# ----------------------------------------------------------------------
# hierarchical collectives under faults: the two-tier schedules surface
# the same typed errors as the flat ones on a multi-host topology
# ----------------------------------------------------------------------
_HIER_ALGOS = {"ssar_hier": ssar_hierarchical, "dsar_hier": dsar_hierarchical}


def _hier_kill_prog(comm, algo):
    stream = make_rank_stream(256, 32, comm.rank)
    try:
        _HIER_ALGOS[algo](comm, stream)
        # the kill may land after this rank already holds its result; the
        # barrier guarantees every survivor observes the dead rank
        comm.barrier()
        return "clean"
    except RankFailedError as exc:
        return ("failed", exc.rank)


def _hier_drop_prog(comm, algo):
    stream = make_rank_stream(256, 32, comm.rank)
    try:
        _HIER_ALGOS[algo](comm, stream)
        return "clean"
    except (CommTimeoutError, RankFailedError) as exc:
        return ("typed", type(exc).__name__)


class TestHierCollectivesUnderFaults:
    """kill= and drop= against ssar_hier/dsar_hier on a 2x4 world."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algo", sorted(_HIER_ALGOS))
    def test_kill_surfaces_typed_error(self, backend, algo):
        nranks, victim = 8, 3
        with pytest.raises(RankError) as ei:
            run_ranks(
                _hier_kill_prog,
                nranks,
                algo,
                backend=backend,
                topology="2x4",
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=2),
                op_timeout=30.0,
            )
        err = ei.value
        cause = err.__cause__
        assert isinstance(cause, (RankFailedError, RankKilledError, CommTimeoutError))
        assert cause.rank == victim
        assert err.partial_results is not None
        for rank, value in enumerate(err.partial_results):
            if rank == victim:
                assert value is None
                continue
            assert value[0] == "failed"
            if backend == "socket":
                # socket failure detection is peer-observed: a survivor
                # mid-exchange with a peer that is itself unwinding from
                # the victim's death can attribute the failure to that
                # peer (a cascade), so only require a typed failure
                # naming some *other* rank
                assert value[1] != rank
            else:
                assert value[1] == victim

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algo", sorted(_HIER_ALGOS))
    def test_full_drop_times_out_typed(self, backend, algo):
        out = run_ranks(
            _hier_drop_prog,
            8,
            algo,
            backend=backend,
            topology="2x4",
            fault_plan=FaultPlan(drop_rate=1.0),
            op_timeout=0.75,
        )
        # every rank's first blocked receive hits its own op_timeout; no
        # rank hangs and no error is a bare RuntimeError
        assert all(value[0] == "typed" for value in out)
        assert "CommTimeoutError" in {value[1] for value in out}


# ----------------------------------------------------------------------
# reproducibility: one seed, one failure sequence, every run
# ----------------------------------------------------------------------
class TestSeedReproducibility:
    def test_same_plan_fails_identically_twice(self):
        plan = FaultPlan(seed=123, drop_rate=0.5)
        # locate the first message the plan will drop on channel 0 -> 1, tag 7
        first_drop = next(
            s for s in range(100) if plan.action(0, 1, 7, s)[0] == "drop"
        )

        def prog(comm, n=first_drop + 1):
            if comm.rank == 0:
                for _ in range(n):
                    comm.send(np.zeros(2), dest=1, tag=7)
                return None
            return [comm.recv(source=0, tag=7) for _ in range(n)]

        observed = []
        for _ in range(2):
            with pytest.raises(RankError) as ei:
                run_ranks(prog, 2, backend="thread", fault_plan=plan, op_timeout=0.5)
            cause = ei.value.__cause__
            observed.append((type(cause), cause.source, cause.tag, str(cause)))
        assert observed[0] == observed[1]
        assert observed[0][0] is CommTimeoutError


# ----------------------------------------------------------------------
# satellite: propagation through SubCommunicator and i_collective proxies
# ----------------------------------------------------------------------
def _subcomm_prog(comm):
    try:
        sub = comm.split(color=comm.rank % 2)
        for _ in range(50):
            peer = 1 - sub.rank
            if sub.rank == 0:
                sub.send(np.arange(2.0), dest=peer, tag=1)
                sub.recv(source=peer, tag=2)
            else:
                sub.recv(source=peer, tag=1)
                sub.send(np.arange(2.0), dest=peer, tag=2)
        return "ok"
    except RankFailedError as exc:
        return ("failed", exc.rank)


def _nonblocking_prog(comm):
    try:
        for _ in range(20):
            handle = i_collective(comm, dense_allreduce, np.full(4, 1.0))
            handle.wait()
        return "ok"
    except RankFailedError as exc:
        return ("failed", exc.rank)


class TestFailurePropagationThroughProxies:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_subcommunicator_surfaces_rank_failure(self, backend):
        victim = 3
        with pytest.raises(RankError) as ei:
            run_ranks(
                _subcomm_prog,
                4,
                backend=backend,
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=25),
            )
        err = ei.value
        assert err.partial_results is not None
        survivors = [v for r, v in enumerate(err.partial_results) if r != victim]
        assert survivors == [("failed", victim)] * 3

    @pytest.mark.parametrize("backend", NB_BACKENDS)
    def test_i_collective_surfaces_rank_failure(self, backend):
        victim = 2
        with pytest.raises(RankError) as ei:
            run_ranks(
                _nonblocking_prog,
                3,
                backend=backend,
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=15),
            )
        err = ei.value
        assert err.partial_results is not None
        survivors = [v for r, v in enumerate(err.partial_results) if r != victim]
        assert survivors == [("failed", victim)] * 2


# ----------------------------------------------------------------------
# satellite: DeferredRecvHandle observes world abort from test() and wait()
# ----------------------------------------------------------------------
class TestDeferredHandleSeesAbort:
    def test_test_raises_after_abort(self):
        world = ThreadWorld(2)
        handle = world.comm(0).irecv(source=1, tag=0)
        assert handle.test() is False  # healthy world: just "not yet"
        world.abort(failed_rank=1)
        with pytest.raises(RankFailedError) as ei:
            handle.test()
        assert ei.value.rank == 1

    def test_wait_raises_after_abort(self):
        world = ThreadWorld(2)
        handle = world.comm(0).irecv(source=1, tag=0)
        world.abort()
        with pytest.raises(WorldAbortedError):
            handle.wait()

    def test_delivered_message_still_wins(self):
        # a message that arrived before the abort is still consumable
        world = ThreadWorld(2)
        world.comm(1).send(np.arange(3.0), dest=0, tag=0)
        handle = world.comm(0).irecv(source=1, tag=0)
        world.abort(failed_rank=1)
        assert handle.test() is True
        np.testing.assert_array_equal(handle.wait(), np.arange(3.0))


# ----------------------------------------------------------------------
# satellite: split validates color before advancing collective counters
# ----------------------------------------------------------------------
class TestSplitColorValidation:
    def test_bad_color_raises_typeerror_locally(self):
        def prog(comm):
            with pytest.raises(TypeError, match="split color"):
                comm.split(color=[comm.rank])  # unhashable: no atomic compare
            # the failed attempt must not have advanced any counter: a
            # subsequent valid split still lines up across all ranks
            sub = comm.split(color=comm.rank % 2)
            return sub.sendrecv(comm.rank, peer=1 - sub.rank, tag=3)

        out = run_ranks(prog, 4)
        assert out.results == [2, 3, 0, 1]

    def test_array_color_rejected(self):
        def prog(comm):
            comm.split(color=np.array([1, 2]))  # elementwise ==, unhashable

        with pytest.raises(RankError) as ei:
            run_ranks(prog, 2)
        assert isinstance(ei.value.__cause__, TypeError)

    def test_none_color_still_opts_out(self):
        def prog(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            return None if sub is None else sub.size

        out = run_ranks(prog, 3)
        assert out.results == [None, 2, 2]


# ----------------------------------------------------------------------
# satellite: typed rendezvous failures
# ----------------------------------------------------------------------
class TestRendezvousErrors:
    def test_wrong_world_size_is_typed(self):
        srv = socketlib.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        addr = srv.getsockname()

        def bad_server():
            conn, _ = srv.accept()
            try:
                sb._recv_blob(conn)
                # reply with one address where two were promised
                sb._send_blob(conn, pickle.dumps([("127.0.0.1", 1)]))
            finally:
                conn.close()
                srv.close()

        threading.Thread(target=bad_server, daemon=True).start()
        with pytest.raises(RendezvousError, match="expected 2") as ei:
            sb._rendezvous_client(addr, 0, 2, ("127.0.0.1", 9), timeout=10.0)
        assert not isinstance(ei.value, RendezvousTimeoutError)

    def test_assembly_timeout_is_typed(self):
        srv = socketlib.socket()
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        addr = srv.getsockname()

        def silent_server():
            conn, _ = srv.accept()
            try:
                sb._recv_blob(conn)  # register the rank, never answer
                conn.recv(1)  # hold the connection open until client gives up
            finally:
                conn.close()
                srv.close()

        threading.Thread(target=silent_server, daemon=True).start()
        with pytest.raises(RendezvousTimeoutError, match="never fully"):
            sb._rendezvous_client(addr, 0, 2, ("127.0.0.1", 9), timeout=0.5)


# ----------------------------------------------------------------------
# graceful degradation: async SGD survives a dead peer
# ----------------------------------------------------------------------
class TestAsyncSGDGracefulDegradation:
    def test_survivors_finish_degraded(self):
        from repro.mlopt import (
            LogisticRegression,
            SGDConfig,
            distributed_sgd_async,
            make_sparse_classification,
        )

        dataset = make_sparse_classification(120, 500, 12, seed=5)

        def prog(comm):
            cfg = SGDConfig(epochs=2, batch_size=20, lr=0.5, mode="sparse")
            model = LogisticRegression(dataset.n_features, 1e-5)
            return distributed_sgd_async(comm, dataset, model, cfg)

        victim = 2
        with pytest.raises(RankError) as ei:
            run_ranks(
                prog,
                4,
                backend="thread",
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=8),
            )
        err = ei.value
        assert err.partial_results is not None
        for rank, history in enumerate(err.partial_results):
            if rank == victim:
                assert history is None
                continue
            # every survivor finished the full run on local gradients
            assert history.degraded_rank == victim
            assert len(history.records) == 2
            assert history.params is not None
            assert np.isfinite(history.final_loss)
