"""Tests for the coordinator (Spark-like) aggregation baseline."""

import numpy as np
import pytest

from repro.frameworks import coordinator_allreduce, tree_aggregate
from repro.netsim import GIGE, replay
from repro.runtime import RankError, run_ranks


def make_vec(rank, n=256):
    return np.random.default_rng(70 + rank).standard_normal(n).astype(np.float32)


class TestTreeAggregate:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 8])
    def test_root_gets_sum(self, nranks):
        def prog(comm):
            return tree_aggregate(comm, make_vec(comm.rank), branching=2)

        out = run_ranks(prog, nranks)
        ref = np.sum([make_vec(r) for r in range(nranks)], axis=0)
        assert np.allclose(out[0], ref, atol=1e-4)
        assert all(out[r] is None for r in range(1, nranks))

    @pytest.mark.parametrize("branching", [2, 3, 4])
    def test_branching_factors(self, branching):
        def prog(comm):
            return tree_aggregate(comm, make_vec(comm.rank), branching=branching)

        out = run_ranks(prog, 8)
        ref = np.sum([make_vec(r) for r in range(8)], axis=0)
        assert np.allclose(out[0], ref, atol=1e-4)

    def test_nonzero_root(self):
        def prog(comm):
            return tree_aggregate(comm, make_vec(comm.rank), root=3)

        out = run_ranks(prog, 8)
        ref = np.sum([make_vec(r) for r in range(8)], axis=0)
        assert np.allclose(out[3], ref, atol=1e-4)
        assert out[0] is None

    def test_invalid_branching(self):
        def prog(comm):
            return tree_aggregate(comm, make_vec(comm.rank), branching=1)

        with pytest.raises(RankError):
            run_ranks(prog, 2)


class TestCoordinatorAllreduce:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6, 8])
    def test_all_ranks_get_sum(self, nranks):
        def prog(comm):
            return coordinator_allreduce(comm, make_vec(comm.rank))

        out = run_ranks(prog, nranks)
        ref = np.sum([make_vec(r) for r in range(nranks)], axis=0)
        for r in range(nranks):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_slower_than_ring_allreduce(self):
        """The coordinator bottleneck: replayed time must exceed the
        bandwidth-optimal ring on the same input."""
        from repro.collectives import allreduce_ring

        n, P = 1 << 16, 8

        def coord(comm):
            return coordinator_allreduce(comm, make_vec(comm.rank, n))

        def ring(comm):
            return allreduce_ring(comm, make_vec(comm.rank, n))

        t_coord = replay(run_ranks(coord, P).trace, GIGE).makespan
        t_ring = replay(run_ranks(ring, P).trace, GIGE).makespan
        assert t_coord > t_ring

    def test_phases_marked(self):
        def prog(comm):
            return coordinator_allreduce(comm, make_vec(comm.rank))

        out = run_ranks(prog, 4)
        result = replay(out.trace, GIGE)
        assert result.phase("tree_aggregate") > 0
