"""Hierarchical sparse allreduce (``ssar_hier``) and its selector wiring.

Covers the correctness contract (same sum as every flat algorithm on any
topology), the bit-compatibility guarantee with ``ssar_rec_dbl`` on
power-of-two aligned host groups, the inter-node byte savings that are
the algorithm's reason to exist, and the two-host socket smoke leg CI
pins (2 simulated hosts x 2 ranks over TCP loopback).
"""

import numpy as np
import pytest

from repro.analysis import expected_two_tier_sizes, expected_union_size
from repro.collectives import (
    choose_algorithm,
    dsar_hierarchical,
    run_sparse_allreduce,
    sparse_allreduce,
    ssar_hierarchical,
    tree_reduce,
)
from repro.netsim import TIERED_ARIES, TIERED_GIGE, TIERED_IB_FDR, replay
from repro.quant import QSGDQuantizer
from repro.runtime import RankError, Topology, bytes_by_tier, run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

DIM, NNZ = 2048, 64


def _hier_prog(comm, topology=None, inner="ssar_rec_dbl"):
    stream = make_rank_stream(DIM, NNZ, comm.rank)
    return ssar_hierarchical(comm, stream, topology=topology, inner=inner)


class TestCorrectness:
    @pytest.mark.parametrize(
        "nranks,topology",
        [
            (1, None),
            (2, "2x1"),
            (3, 2),  # ragged: node0=[0,1] node1=[2]
            (4, None),  # flat fallback
            (4, "2x2"),
            (5, 2),
            (6, 3),
            (8, "2x4"),
            (8, "4x2"),
            (8, ("a", "a", "a", "b", "b", "c", "c", "c")),  # uneven hosts
        ],
    )
    def test_matches_dense_reference(self, nranks, topology):
        out = run_ranks(_hier_prog, nranks, topology, backend="thread")
        ref = reference_sum(DIM, NNZ, nranks)
        for r in range(nranks):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4), f"rank {r}"
        # the allreduce contract: every rank holds the identical result
        for r in range(1, nranks):
            assert np.array_equal(out[0].to_dense(), out[r].to_dense())

    @pytest.mark.parametrize("inner", ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring"])
    def test_every_inner_kernel(self, inner):
        out = run_ranks(_hier_prog, 8, "2x4", inner, backend="thread")
        ref = reference_sum(DIM, NNZ, 8)
        for r in range(8):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)

    def test_unknown_inner_rejected(self):
        with pytest.raises(RankError, match="unknown inner"):
            run_ranks(_hier_prog, 2, None, "nope", backend="thread")

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(RankError, match="describes 4 ranks"):
            run_ranks(_hier_prog, 2, Topology.uniform(4, 2), backend="thread")

    def test_comm_topology_is_the_default(self):
        """With no explicit argument the communicator's map drives grouping."""

        def prog(comm):
            return ssar_hierarchical(comm, make_rank_stream(DIM, NNZ, comm.rank))

        out = run_ranks(prog, 4, backend="thread", topology="2x2")
        assert np.allclose(out[0].to_dense(), reference_sum(DIM, NNZ, 4), atol=1e-4)

    def test_empty_streams(self):
        def prog(comm):
            return ssar_hierarchical(
                comm, SparseStream(DIM), topology=Topology.uniform(4, 2)
            )

        out = run_ranks(prog, 4, backend="thread")
        assert out[0].nnz == 0

    def test_dense_input_handled(self):
        """Dense-representation inputs are sparsified first, like the other
        SSAR entry points."""

        def prog(comm):
            dense_in = make_rank_stream(DIM, NNZ, comm.rank).densify()
            return ssar_hierarchical(comm, dense_in, topology="2x2")

        out = run_ranks(prog, 4, backend="thread")
        assert np.allclose(out[0].to_dense(), reference_sum(DIM, NNZ, 4), atol=1e-4)


class TestBitCompatibility:
    """On power-of-two aligned host groups the hierarchical schedule applies
    the exact floating-point association of recursive doubling."""

    @pytest.mark.parametrize(
        "nranks,topology",
        [(2, None), (4, None), (8, None), (4, "2x2"), (8, "2x4"), (8, "4x2"), (3, 3)],
    )
    def test_bit_identical_to_rec_dbl(self, nranks, topology):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(nranks)]
        hier = run_sparse_allreduce(streams, "ssar_hier", topology=topology)
        rec = run_sparse_allreduce(streams, "ssar_rec_dbl", topology=topology)
        for r in range(nranks):
            assert np.array_equal(hier[r].to_dense(), rec[r].to_dense()), f"rank {r}"
            assert hier[r].is_dense == rec[r].is_dense


class TestInterNodeSavings:
    def test_hier_moves_fewer_inter_node_bytes(self):
        """The point of the algorithm: only merged unions cross the slow tier."""
        topo = Topology.from_spec("2x4")
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(8)]
        by_algo = {
            algo: run_sparse_allreduce(streams, algo, topology=topo)
            for algo in ("ssar_hier", "ssar_rec_dbl", "ssar_split_ag", "ssar_ring")
        }
        inter = {a: bytes_by_tier(res.trace, topo)[1] for a, res in by_algo.items()}
        assert inter["ssar_hier"] < inter["ssar_rec_dbl"]
        assert inter["ssar_hier"] < inter["ssar_split_ag"]
        assert inter["ssar_hier"] < inter["ssar_ring"]

    def test_flat_topology_has_zero_inter_bytes(self):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        out = run_sparse_allreduce(streams, "ssar_hier")
        assert bytes_by_tier(out.trace, Topology.flat(4)) == (
            out.trace.total_bytes_sent,
            0,
        )

    def test_two_tier_model_bounds_leader_payload(self):
        """App. B extended: the leader union is smaller than m*k but at
        least k — the volume the slow tier is spared."""
        k_local, k_total = expected_two_tier_sizes(NNZ, DIM, 8, 4)
        assert NNZ <= k_local < 4 * NNZ
        assert k_local <= k_total == expected_union_size(NNZ, DIM, 8)
        with pytest.raises(ValueError):
            expected_two_tier_sizes(NNZ, DIM, 4, 8)
        with pytest.raises(ValueError):
            expected_two_tier_sizes(NNZ, DIM, 4, 0)


class TestTreeReduce:
    def test_root_holds_union_others_partial(self):
        def prog(comm):
            return tree_reduce(comm, make_rank_stream(DIM, NNZ, comm.rank)).to_dense()

        out = run_ranks(prog, 5, backend="thread")
        assert np.allclose(out[0], reference_sum(DIM, NNZ, 5), atol=1e-4)

    def test_single_rank_copy(self):
        def prog(comm):
            s = make_rank_stream(DIM, NNZ, comm.rank)
            out = tree_reduce(comm, s)
            assert out is not s
            return np.array_equal(out.to_dense(), s.to_dense())

        assert run_ranks(prog, 1).results == [True]


class TestAutoSelection:
    def test_auto_picks_hier_on_hierarchical_world(self):
        def prog(comm):
            out = sparse_allreduce(
                comm, make_rank_stream(DIM, NNZ, comm.rank), algorithm="auto"
            )
            marks = [
                e.label
                for e in comm.trace.events(comm.rank)
                if e.op == "mark"
            ]
            return ("ssar_hier" in marks, out.to_dense())

        out = run_ranks(prog, 4, backend="thread", topology="2x2")
        picked, dense = out[0]
        assert picked
        assert np.allclose(dense, reference_sum(DIM, NNZ, 4), atol=1e-4)

    def test_auto_stays_flat_without_topology(self):
        def prog(comm):
            sparse_allreduce(comm, make_rank_stream(DIM, NNZ, comm.rank), "auto")
            return [
                e.label for e in comm.trace.events(comm.rank) if e.op == "mark"
            ]

        out = run_ranks(prog, 4, backend="thread")
        assert "ssar_hier" not in out[0]


def _dsar_hier_prog(comm, topology=None, quantizer=None):
    stream = make_rank_stream(DIM, NNZ, comm.rank)
    return dsar_hierarchical(comm, stream, quantizer=quantizer, topology=topology)


class TestDsarHier:
    @pytest.mark.parametrize(
        "nranks,topology",
        [
            (1, None),
            (2, "2x1"),
            (3, 2),  # ragged: node0=[0,1] node1=[2]
            (4, None),  # flat fallback
            (4, "2x2"),
            (6, 3),
            (8, "2x4"),
            (8, "4x2"),
            (8, ("a", "a", "a", "b", "b", "c", "c", "c")),  # uneven hosts
        ],
    )
    def test_matches_dense_reference(self, nranks, topology):
        out = run_ranks(_dsar_hier_prog, nranks, topology, backend="thread")
        ref = reference_sum(DIM, NNZ, nranks)
        for r in range(nranks):
            assert out[r].is_dense, f"rank {r}"  # the representation switch
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4), f"rank {r}"
        for r in range(1, nranks):
            assert np.array_equal(out[0].to_dense(), out[r].to_dense())

    def test_via_sparse_allreduce_api(self):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        out = run_sparse_allreduce(streams, "dsar_hier", topology="2x2")
        assert out[0].is_dense
        assert np.allclose(out[0].to_dense(), reference_sum(DIM, NNZ, 4), atol=1e-4)

    def test_comm_topology_is_the_default(self):
        def prog(comm):
            return dsar_hierarchical(comm, make_rank_stream(DIM, NNZ, comm.rank))

        out = run_ranks(prog, 4, backend="thread", topology="2x2")
        assert np.allclose(out[0].to_dense(), reference_sum(DIM, NNZ, 4), atol=1e-4)

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(RankError, match="describes 4 ranks"):
            run_ranks(_dsar_hier_prog, 2, Topology.uniform(4, 2), backend="thread")

    def test_moves_fewer_inter_node_bytes_than_flat_dsar(self):
        """Only nnodes dense partitions cross the slow tier instead of P."""
        topo = Topology.from_spec("2x4")
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(8)]
        hier = run_sparse_allreduce(streams, "dsar_hier", topology=topo)
        flat = run_sparse_allreduce(streams, "dsar_split_ag", topology=topo)
        assert (
            bytes_by_tier(hier.trace, topo)[1] < bytes_by_tier(flat.trace, topo)[1]
        )

    def test_quantized_identical_across_ranks_and_close(self):
        """Each partition quantized once by its owning leader: every rank
        dequantizes the same codes, so results agree bit for bit."""
        def prog(comm):
            return dsar_hierarchical(
                comm,
                make_rank_stream(DIM, NNZ, comm.rank),
                quantizer=QSGDQuantizer(bits=8, bucket_size=256, seed=100 + comm.rank),
                topology="2x2",
            )

        out = run_ranks(prog, 4, backend="thread")
        ref = reference_sum(DIM, NNZ, 4)
        base = out[0].to_dense()
        for r in range(1, 4):
            assert np.array_equal(base, out[r].to_dense())
        err = np.linalg.norm(base - ref) / max(np.linalg.norm(ref), 1e-12)
        assert err < 0.05

    def test_quantized_moves_fewer_bytes(self):
        def factory(bits):
            def prog(comm):
                q = QSGDQuantizer(bits=bits, bucket_size=256, seed=1) if bits else None
                return dsar_hierarchical(
                    comm, make_rank_stream(1 << 14, 512, comm.rank),
                    quantizer=q, topology="2x2",
                )
            return prog

        full = run_ranks(factory(None), 4, backend="thread")
        quant = run_ranks(factory(4), 4, backend="thread")
        assert quant.trace.total_bytes_sent < full.trace.total_bytes_sent

    def test_single_rank_quantizes_once(self):
        """P=1 delegates to the flat kernel's fixed single-rank path."""
        def prog(comm):
            return dsar_hierarchical(
                comm,
                make_rank_stream(DIM, NNZ, comm.rank),
                quantizer=QSGDQuantizer(bits=4, bucket_size=128, seed=9),
            )

        out = run_ranks(prog, 1, backend="thread")
        q = QSGDQuantizer(bits=4, bucket_size=128, seed=9)
        expect = q.dequantize(
            q.quantize(make_rank_stream(DIM, NNZ, 0).to_dense())
        ).astype(np.float32)
        assert np.array_equal(out[0].to_dense(), expect)


class TestTieredReplayVerdict:
    """The PR's acceptance shape: under a tiered preset on 2x4 the replayed
    makespan of the hierarchical schedule beats every flat algorithm, and
    choose_algorithm agrees with that replay verdict.

    The full sweep-the-board verdict is pinned under the GigE-class tier —
    the cloud regime where the inter-node wire dominates (on an Aries/IB
    class fabric the replay is CPU-gamma-bound at this small P, and the
    leader's concentrated merge work keeps distributed-reduction schedules
    competitive — the wire-only ordering is pinned in test_netsim). Every
    preset must still prefer ssar_hier over its structural counterpart
    ssar_rec_dbl, whose inter round moves the same unions through a shared
    uplink four-at-a-time."""

    TOPO = Topology.from_spec("2x4")
    TDIM = 1 << 16
    STATIC_NNZ = 3000  # E[K8] ~ 20k, well below delta = 32768
    DYNAMIC_NNZ = 12000  # E[K8] ~ 53k > delta -> dynamic instance

    def _trace(self, algo, nnz):
        streams = [make_rank_stream(self.TDIM, nnz, r) for r in range(8)]
        return run_sparse_allreduce(streams, algo, topology=self.TOPO).trace

    def test_static_hier_beats_flat_and_selector_agrees(self):
        times = {
            algo: replay(
                self._trace(algo, self.STATIC_NNZ), TIERED_GIGE, topology=self.TOPO
            ).makespan
            for algo in ("ssar_hier", "ssar_rec_dbl", "ssar_split_ag", "ssar_ring")
        }
        assert times["ssar_hier"] == min(times.values()), times
        assert (
            choose_algorithm(self.TDIM, 8, self.STATIC_NNZ, topology=self.TOPO)
            == "ssar_hier"
        )

    @pytest.mark.parametrize("preset", [TIERED_ARIES, TIERED_IB_FDR, TIERED_GIGE])
    def test_hier_beats_rec_dbl_under_every_tiered_preset(self, preset):
        t_hier = replay(
            self._trace("ssar_hier", self.STATIC_NNZ), preset, topology=self.TOPO
        ).makespan
        t_rec = replay(
            self._trace("ssar_rec_dbl", self.STATIC_NNZ), preset, topology=self.TOPO
        ).makespan
        assert t_hier < t_rec, preset.name

    def test_dynamic_hier_beats_flat_and_selector_agrees(self):
        t_hier = replay(
            self._trace("dsar_hier", self.DYNAMIC_NNZ), TIERED_GIGE, topology=self.TOPO
        ).makespan
        t_flat = replay(
            self._trace("dsar_split_ag", self.DYNAMIC_NNZ),
            TIERED_GIGE,
            topology=self.TOPO,
        ).makespan
        assert t_hier < t_flat
        assert (
            choose_algorithm(
                self.TDIM, 8, self.DYNAMIC_NNZ, topology=self.TOPO, network=TIERED_GIGE
            )
            == "dsar_hier"
        )

    def test_flat_preset_replay_sees_no_hier_advantage_reversal(self):
        """Replay under the plain flat presets is untouched by the tiered
        machinery: identical numbers with and without a topology."""
        from repro.netsim import GIGE

        trace = self._trace("ssar_hier", self.STATIC_NNZ)
        assert (
            replay(trace, GIGE).finish_times
            == replay(trace, GIGE, topology=self.TOPO).finish_times
        )


def _chunked_prog(comm, algo, chunks, topology=None):
    stream = make_rank_stream(DIM, NNZ, comm.rank)
    fn = ssar_hierarchical if algo == "ssar_hier" else dsar_hierarchical
    return fn(comm, stream, topology=topology, chunks=chunks)


class TestChunked:
    """The chunked pipeline (tentpole of the overlap PR): splitting the
    coordinate space into K chunks so leader exchanges overlap intra-host
    reduces must not change a single bit of the result — every chunk is
    reduced by the exact unchunked schedule on its sub-range."""

    @pytest.mark.parametrize("algo", ["ssar_hier", "dsar_hier"])
    @pytest.mark.parametrize("chunks", [2, 3, 4, 8])
    @pytest.mark.parametrize(
        "nranks,topology",
        [(3, 2), (4, "2x2"), (5, 2), (8, "2x4")],  # ragged + aligned hosts
    )
    def test_bit_identical_to_unchunked(self, algo, chunks, nranks, topology):
        base = run_ranks(_chunked_prog, nranks, algo, 1, topology, backend="thread")
        out = run_ranks(_chunked_prog, nranks, algo, chunks, topology, backend="thread")
        ref = reference_sum(DIM, NNZ, nranks)
        for r in range(nranks):
            assert np.array_equal(base[r].to_dense(), out[r].to_dense()), f"rank {r}"
            assert base[r].is_dense == out[r].is_dense
        assert np.allclose(base[0].to_dense(), ref, atol=1e-4)

    def test_chunks_one_is_the_unchunked_schedule(self):
        """chunks=1 takes the original code path: identical trace shape."""
        base = run_ranks(_chunked_prog, 4, "ssar_hier", 1, "2x2", backend="thread")
        plain = run_ranks(_hier_prog, 4, "2x2", backend="thread")
        assert base.trace.total_messages == plain.trace.total_messages
        assert base.trace.total_bytes_sent == plain.trace.total_bytes_sent

    def test_more_chunks_than_nnz(self):
        """Chunks that receive no coordinates still flow through the
        pipeline (empty streams are legal payloads)."""
        out = run_ranks(_chunked_prog, 4, "ssar_hier", 64, "2x2", backend="thread")
        base = run_ranks(_chunked_prog, 4, "ssar_hier", 1, "2x2", backend="thread")
        for r in range(4):
            assert np.array_equal(base[r].to_dense(), out[r].to_dense())

    def test_empty_streams_chunked(self):
        def prog(comm):
            return ssar_hierarchical(
                comm, SparseStream(DIM), topology=Topology.uniform(4, 2), chunks=4
            )

        out = run_ranks(prog, 4, backend="thread")
        assert out[0].nnz == 0

    @pytest.mark.parametrize("bad", [0, -1, True, 2.5])
    def test_invalid_chunks_rejected(self, bad):
        with pytest.raises(RankError, match="chunks"):
            run_ranks(_chunked_prog, 2, "ssar_hier", bad, 2, backend="thread")

    def test_chunks_noop_on_flat_algorithms(self):
        """Like the quantizer knob, chunks= is silently dropped by
        algorithms that cannot pipeline: same trace, same bits."""
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        base = run_sparse_allreduce(streams, "ssar_rec_dbl")
        out = run_sparse_allreduce(streams, "ssar_rec_dbl", chunks=4)
        for r in range(4):
            assert np.array_equal(base[r].to_dense(), out[r].to_dense())
        assert base.trace.total_messages == out.trace.total_messages
        assert base.trace.total_bytes_sent == out.trace.total_bytes_sent

    def test_auto_selection_accepts_chunks(self):
        """algorithm="auto" + chunks= picks ssar_hier on a hierarchical
        world and matches the unchunked auto result bit for bit."""
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        base = run_sparse_allreduce(streams, "auto", topology="2x2")
        out = run_sparse_allreduce(streams, "auto", topology="2x2", chunks=4)
        for r in range(4):
            assert np.array_equal(base[r].to_dense(), out[r].to_dense())
        assert out.trace.total_messages > base.trace.total_messages  # chunked

    def test_chunked_still_moves_fewer_inter_node_bytes(self):
        """Chunking adds per-chunk headers but must not forfeit the
        hierarchy's reason to exist on the slow tier."""
        topo = Topology.from_spec("2x4")
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(8)]
        chunked = run_sparse_allreduce(streams, "ssar_hier", topology=topo, chunks=4)
        rec = run_sparse_allreduce(streams, "ssar_rec_dbl", topology=topo)
        assert bytes_by_tier(chunked.trace, topo)[1] < bytes_by_tier(rec.trace, topo)[1]

    @pytest.mark.parametrize("inner", ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring"])
    def test_every_inner_kernel_chunked(self, inner):
        def prog(comm):
            return ssar_hierarchical(
                comm, make_rank_stream(DIM, NNZ, comm.rank),
                topology="2x4", inner=inner, chunks=3,
            )

        def baseline(comm):
            return ssar_hierarchical(
                comm, make_rank_stream(DIM, NNZ, comm.rank),
                topology="2x4", inner=inner,
            )

        out = run_ranks(prog, 8, backend="thread")
        base = run_ranks(baseline, 8, backend="thread")
        for r in range(8):
            assert np.array_equal(base[r].to_dense(), out[r].to_dense())

    def test_quantized_chunked_dsar_agrees_across_ranks(self):
        """Quantized + chunked is *not* bit-identical to unchunked (the
        quantizer buckets tile each chunk separately) but stays an
        allreduce: every rank identical, close to the true sum."""
        def prog(comm):
            return dsar_hierarchical(
                comm,
                make_rank_stream(DIM, NNZ, comm.rank),
                quantizer=QSGDQuantizer(bits=8, bucket_size=256, seed=100 + comm.rank),
                topology="2x2",
                chunks=4,
            )

        out = run_ranks(prog, 4, backend="thread")
        ref = reference_sum(DIM, NNZ, 4)
        base = out[0].to_dense()
        for r in range(1, 4):
            assert np.array_equal(base, out[r].to_dense())
        err = np.linalg.norm(base - ref) / max(np.linalg.norm(ref), 1e-12)
        assert err < 0.05

    def test_single_rank_chunked(self):
        out = run_ranks(_chunked_prog, 1, "ssar_hier", 4, None, backend="thread")
        assert np.allclose(out[0].to_dense(), reference_sum(DIM, NNZ, 1), atol=1e-6)


@pytest.mark.parametrize("nranks,topology", [(4, "2x2")])
class TestSocketTwoHostSmoke:
    """The CI hierarchical smoke leg: 2 simulated hosts x 2 ranks over the
    socket backend on loopback, bit-for-bit against ssar_rec_dbl."""

    def test_socket_two_host_bit_identical(self, nranks, topology):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(nranks)]
        hier = run_sparse_allreduce(
            streams, "ssar_hier", backend="socket", topology=topology
        )
        rec = run_sparse_allreduce(
            streams, "ssar_rec_dbl", backend="socket", topology=topology
        )
        ref = reference_sum(DIM, NNZ, nranks)
        topo = Topology.from_spec(topology)
        for r in range(nranks):
            assert np.array_equal(hier[r].to_dense(), rec[r].to_dense()), f"rank {r}"
            assert np.allclose(hier[r].to_dense(), ref, atol=1e-4)
        assert bytes_by_tier(hier.trace, topo)[1] < bytes_by_tier(rec.trace, topo)[1]
