"""End-to-end integration tests crossing module boundaries.

These exercise the full pipeline the benchmarks rely on: execute a real
distributed workload on the thread backend, replay the trace under a
network model, and check the paper-level qualitative claims.
"""

import numpy as np
import pytest

from repro import (
    ARIES,
    GIGE,
    SparseStream,
    TopKSGDConfig,
    dense_allreduce,
    dense_sgd,
    quantized_topk_sgd,
    replay,
    run_ranks,
    sparse_allreduce,
)
from repro.mlopt import LogisticRegression, SGDConfig, distributed_sgd, make_url_like
from repro.nn import make_eval_fn, make_grad_fn, make_mlp

from conftest import make_rank_stream, reference_sum


class TestMicrobenchClaims:
    """Qualitative shape of Fig. 3 at test scale."""

    def test_sparse_beats_dense_at_low_density(self):
        dim, nnz, P = 1 << 18, 500, 8  # d ~ 0.2%

        def sparse(comm):
            return sparse_allreduce(comm, make_rank_stream(dim, nnz, comm.rank), "ssar_rec_dbl")

        def dense(comm):
            return dense_allreduce(comm, make_rank_stream(dim, nnz, comm.rank).to_dense())

        t_sparse = replay(run_ranks(sparse, P).trace, ARIES).makespan
        t_dense = replay(run_ranks(dense, P).trace, ARIES).makespan
        assert t_dense / t_sparse > 10

    def test_dsar_bounded_speedup_at_high_density(self):
        """§5.3.3: when the result is dense, sparsity alone caps at 2/kappa."""
        dim, P = 1 << 14, 8
        nnz = dim // 3  # massive fill-in: result dense

        def dsar(comm):
            return sparse_allreduce(comm, make_rank_stream(dim, nnz, comm.rank), "dsar_split_ag")

        def dense(comm):
            return dense_allreduce(comm, make_rank_stream(dim, nnz, comm.rank).to_dense())

        t_dsar = replay(run_ranks(dsar, P).trace, ARIES.with_(gamma=0)).makespan
        t_dense = replay(run_ranks(dense, P).trace, ARIES.with_(gamma=0)).makespan
        assert t_dense / t_dsar < 4.0 * 1.3  # 2/kappa = 4 for float32 (+slack)

    def test_rec_dbl_wins_small_split_wins_large(self):
        """The latency/bandwidth crossover that drives the selector.

        Recursive doubling wins latency-bound instances. The split wins
        when supports overlap (K clearly below P*k): doubling re-ships the
        growing partial sums every round while the split moves each reduced
        coordinate once (§5.3.2: it "dominates ... as long as the number of
        non-zero indices is relatively low compared to the overall reduced
        size").
        """
        P = 8

        def run(algo, nnz, dim, stride=1):
            def prog(c):
                gen = np.random.default_rng(4000 + c.rank)
                # stride > 1: supports overlap heavily (K << P*k) but stay
                # spread over the whole dimension (balanced partitions)
                candidates = dim // stride
                idx = np.sort(gen.choice(candidates, size=nnz, replace=False) * stride)
                s = SparseStream(
                    dim, indices=idx.astype(np.uint32),
                    values=np.ones(nnz, dtype=np.float32), copy=False,
                )
                return sparse_allreduce(c, s, algo)

            out = run_ranks(prog, P)
            return replay(out.trace, ARIES.with_(gamma=0)).makespan

        # tiny payload: recursive doubling's log2(P) alpha wins
        assert run("ssar_rec_dbl", 10, 1 << 20) < run("ssar_split_ag", 10, 1 << 20)
        # large overlapping payload: the split's bandwidth optimality wins
        big = dict(nnz=60_000, dim=1 << 22, stride=20)
        assert run("ssar_split_ag", **big) < run("ssar_rec_dbl", **big)

    def test_network_ordering_preserved(self):
        """Identical trace, slower network -> proportionally slower replay."""
        dim, nnz, P = 1 << 16, 300, 4
        out = run_ranks(
            lambda c: sparse_allreduce(c, make_rank_stream(dim, nnz, c.rank), "ssar_rec_dbl"), P
        )
        assert replay(out.trace, GIGE).makespan > replay(out.trace, ARIES).makespan * 10


class TestEndToEndTraining:
    def test_url_workload_speedup_and_same_model(self):
        """Table 2 shape: same model, sparse comm strictly cheaper."""
        ds = make_url_like(scale=0.002, n_samples=240)
        P = 4

        def prog(comm, mode):
            model = LogisticRegression(ds.n_features, reg=1e-5)
            cfg = SGDConfig(epochs=2, batch_size=30, lr=1.0, mode=mode)
            return distributed_sgd(comm, ds, model, cfg)

        sp = run_ranks(prog, P, "sparse")
        dn = run_ranks(prog, P, "dense")
        assert np.allclose(sp[0].params, dn[0].params, atol=1e-5)
        t_sp = replay(sp.trace, GIGE).makespan
        t_dn = replay(dn.trace, GIGE).makespan
        assert t_dn / t_sp > 1.2

    def test_topk_sgd_recovers_dense_accuracy(self):
        """Fig. 4a shape at test scale: sparse+quantized matches dense."""
        from repro.mlopt import make_cifar_like

        ds = make_cifar_like(n_samples=384, dim=128)
        P, steps = 4, 100

        def topk(comm):
            net = make_mlp(128, 10, hidden=(48,), seed=11)
            cfg = TopKSGDConfig(k=8, bucket_size=512, lr=0.06, quantizer_bits=4)
            return quantized_topk_sgd(
                comm, make_grad_fn(net, ds, comm, 32, seed=4), net.n_params, steps, cfg,
                make_eval_fn(net, ds, 256), eval_every=steps, init_params=net.param_vector(),
            )

        def dense(comm):
            net = make_mlp(128, 10, hidden=(48,), seed=11)
            return dense_sgd(
                comm, make_grad_fn(net, ds, comm, 32, seed=4), net.n_params, steps,
                lr=0.06 / comm.size, eval_fn=make_eval_fn(net, ds, 256),
                eval_every=steps, init_params=net.param_vector(),
            )

        topk_out = run_ranks(topk, P)
        dense_out = run_ranks(dense, P)
        acc_topk = topk_out[0].history[-1]["accuracy"]
        acc_dense = dense_out[0].history[-1]["accuracy"]
        assert acc_topk >= acc_dense - 0.05  # "< 0.5% accuracy loss" at scale
        assert dense_out[0].mean_bytes_per_step / topk_out[0].mean_bytes_per_step > 10

    def test_trace_accumulates_across_collectives(self):
        """One trace object can hold a whole training run for replay."""
        dim, P = 1 << 12, 4

        def prog(comm):
            for step in range(3):
                s = make_rank_stream(dim, 50, comm.rank, base_seed=8000 + step)
                sparse_allreduce(comm, s, "ssar_rec_dbl")
            return None

        out = run_ranks(prog, P)
        result = replay(out.trace, ARIES)
        assert result.makespan > 0
        # 3 collectives x log2(4) rounds x 4 ranks sends
        sends = sum(1 for e in out.trace.events(0) if e.op == "send")
        assert sends == 3 * 2


class TestQuantizedPipeline:
    def test_dsar_quantized_training_still_converges(self):
        """Full Algorithm 1 with the quantized-DSAR path as the collective."""
        dim, P, steps = 2048, 4, 60
        centre = np.random.default_rng(3).standard_normal(dim).astype(np.float32)

        def grad_fn_for(rank):
            g = np.random.default_rng(100 + rank)

            def fn(params, step):
                return ((params - centre) / P + g.standard_normal(dim) * 0.01).astype(np.float32)

            return fn

        def prog(comm):
            cfg = TopKSGDConfig(
                k=256, bucket_size=512, lr=0.4, lr_decay=0.02, algorithm="dsar_split_ag",
                quantizer_bits=8,
            )
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, steps, cfg)

        out = run_ranks(prog, P)
        err = np.linalg.norm(out[0].params - centre) / np.linalg.norm(centre)
        assert err < 0.2
        for r in range(1, P):
            assert np.array_equal(out[r].params, out[0].params)
