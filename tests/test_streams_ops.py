"""Tests for arbitrary reduction operations over sparse streams (§5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dense_allreduce, sparse_allreduce
from repro.runtime import RankError, run_ranks
from repro.streams import (
    MAX,
    MIN,
    PROD,
    REDUCE_OPS,
    SUM,
    ReduceOp,
    SparseStream,
    add_streams,
    reduce_streams,
)


def nonneg_stream(dim, nnz, seed):
    gen = np.random.default_rng(seed)
    idx = gen.choice(dim, size=nnz, replace=False)
    vals = np.abs(gen.standard_normal(nnz)).astype(np.float32) + 0.01
    return SparseStream(dim, indices=idx, values=vals)


class TestReduceOp:
    def test_registry(self):
        assert set(REDUCE_OPS) == {"sum", "max", "min", "prod"}

    def test_neutral_elements(self):
        assert SUM.neutral == 0.0
        assert MAX.neutral == 0.0
        assert MIN.neutral == 0.0
        assert PROD.neutral == 1.0

    def test_combine(self):
        a, b = np.array([1.0, 5.0]), np.array([3.0, 2.0])
        assert np.array_equal(MAX.combine(a, b), [3.0, 5.0])
        assert np.array_equal(MIN.combine(a, b), [1.0, 2.0])

    def test_custom_op(self):
        op = ReduceOp("absmax", np.maximum, 0.0)
        assert op.name == "absmax"
        assert str(op) == "absmax"


class TestStreamReductionWithOps:
    @pytest.mark.parametrize("op", [SUM, MAX])
    def test_matches_dense_reference(self, op):
        a = nonneg_stream(200, 30, 1)
        b = nonneg_stream(200, 30, 2)
        out = add_streams(a, b, op)
        ref = op.ufunc(a.to_dense(op.neutral), b.to_dense(op.neutral))
        assert np.allclose(out.to_dense(op.neutral), ref, atol=1e-6)

    def test_max_keeps_larger_on_overlap(self):
        a = SparseStream(10, indices=[3], values=[2.0])
        b = SparseStream(10, indices=[3], values=[5.0])
        out = add_streams(a, b, MAX)
        assert out.to_dense()[3] == pytest.approx(5.0)

    def test_min_on_nonpositive_data(self):
        a = SparseStream(10, indices=[1, 3], values=[-2.0, -1.0])
        b = SparseStream(10, indices=[3, 5], values=[-4.0, -3.0])
        out = add_streams(a, b, MIN)
        dense = out.to_dense()
        assert dense[3] == pytest.approx(-4.0)
        assert dense[1] == pytest.approx(-2.0)
        assert dense[5] == pytest.approx(-3.0)

    def test_densify_switch_uses_neutral_fill(self):
        # dim 16 -> delta 8; force the switch with MAX over negatives plus
        # check the missing coordinates hold the neutral element (0)
        a = nonneg_stream(16, 5, 3)
        b = nonneg_stream(16, 5, 4)
        out = add_streams(a, b, MAX)
        assert out.is_dense
        ref = np.maximum(a.to_dense(), b.to_dense())
        assert np.allclose(out.to_dense(), ref, atol=1e-6)

    def test_reduce_streams_with_op(self):
        streams = [nonneg_stream(100, 20, 10 + i) for i in range(5)]
        ref = np.max([s.to_dense() for s in streams], axis=0)
        out = reduce_streams(streams, MAX)
        assert np.allclose(out.to_dense(), ref, atol=1e-6)

    def test_to_dense_fill(self):
        s = SparseStream(4, indices=[1], values=[3.0])
        assert np.array_equal(s.to_dense(fill=1.0), [1.0, 3.0, 1.0, 1.0])


class TestCollectivesWithOps:
    @pytest.mark.parametrize("algorithm", ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag"])
    @pytest.mark.parametrize("op_name", ["max", "sum"])
    def test_sparse_allreduce_ops(self, algorithm, op_name):
        P, dim, nnz = 4, 1024, 40
        op = REDUCE_OPS[op_name]

        def prog(comm):
            return sparse_allreduce(
                comm, nonneg_stream(dim, nnz, 100 + comm.rank), algorithm=algorithm, op=op_name
            )

        out = run_ranks(prog, P)
        ref = reduce_streams([nonneg_stream(dim, nnz, 100 + r) for r in range(P)], op)
        for r in range(P):
            assert np.allclose(
                out[r].to_dense(op.neutral), ref.to_dense(op.neutral), atol=1e-5
            ), f"{algorithm}/{op_name} wrong at rank {r}"

    @pytest.mark.parametrize("algorithm", ["dense_rec_dbl", "dense_ring", "dense_rabenseifner"])
    def test_dense_allreduce_max(self, algorithm):
        P = 4

        def prog(comm):
            vec = np.random.default_rng(50 + comm.rank).standard_normal(128).astype(np.float32)
            return dense_allreduce(comm, vec, algorithm=algorithm, op="max")

        out = run_ranks(prog, P)
        ref = np.max(
            [np.random.default_rng(50 + r).standard_normal(128).astype(np.float32) for r in range(P)],
            axis=0,
        )
        for r in range(P):
            assert np.allclose(out[r], ref, atol=1e-6)

    def test_non_power_of_two_with_max(self):
        def prog(comm):
            return sparse_allreduce(
                comm, nonneg_stream(512, 30, 200 + comm.rank), algorithm="ssar_rec_dbl", op="max"
            )

        out = run_ranks(prog, 5)
        ref = reduce_streams([nonneg_stream(512, 30, 200 + r) for r in range(5)], MAX)
        assert np.allclose(out[0].to_dense(), ref.to_dense(), atol=1e-6)

    def test_unknown_op_rejected(self):
        def prog(comm):
            return sparse_allreduce(comm, nonneg_stream(64, 4, 0), op="median")

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_custom_op_object_accepted(self):
        op = ReduceOp("max2", np.maximum, 0.0)

        def prog(comm):
            return sparse_allreduce(
                comm, nonneg_stream(256, 16, 300 + comm.rank), algorithm="ssar_rec_dbl", op=op
            )

        out = run_ranks(prog, 4)
        ref = reduce_streams([nonneg_stream(256, 16, 300 + r) for r in range(4)], MAX)
        assert np.allclose(out[0].to_dense(), ref.to_dense(), atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    dim=st.integers(min_value=4, max_value=400),
    nranks=st.integers(min_value=1, max_value=6),
    seed=st.integers(0, 10_000),
    op_name=st.sampled_from(["sum", "max"]),
)
def test_property_collective_ops_match_fold(dim, nranks, seed, op_name):
    """Any shape: the collective equals a left fold with the same op."""
    op = REDUCE_OPS[op_name]
    gen = np.random.default_rng(seed)
    nnz = int(gen.integers(0, dim + 1))

    def prog(comm):
        return sparse_allreduce(
            comm, nonneg_stream(dim, nnz, seed + comm.rank), algorithm="ssar_rec_dbl", op=op_name
        )

    out = run_ranks(prog, nranks)
    ref = reduce_streams([nonneg_stream(dim, nnz, seed + r) for r in range(nranks)], op)
    assert np.allclose(out[0].to_dense(op.neutral), ref.to_dense(op.neutral), atol=1e-4)
