"""Elastic worlds: epoch windows, shrink barrier, rejoin, and stale frames.

The acceptance contract of the elastic runtime:

* a rank killed by a :class:`FaultPlan` mid-collective leaves the
  survivors able to ``comm.shrink()`` into a working (P-1)-rank world
  whose collectives are bit-identical on every backend;
* a dead thread rank rejoins through
  :func:`~repro.runtime.elastic.thread_rejoin` (the socket analog is
  ``serve-rank --rejoin``) and the regrown world computes with all P
  ranks again;
* frames and operations belonging to a superseded epoch surface as typed
  :class:`StaleEpochError` / wire-level drops — never silent corruption;
* the async SGD driver's ``on_failure="shrink"`` mode records the
  aggregating world size per epoch and hands a rejoiner the live model.
"""

import threading
import time

import numpy as np
import pytest

from repro.collectives.dense import allreduce_recursive_doubling
from repro.runtime import (
    ElasticContext,
    FaultPlan,
    RankError,
    RankFailedError,
    StaleEpochError,
    ThreadWorld,
    run_ranks,
    thread_rejoin,
)
from repro.runtime import socket_backend as sb
from repro.runtime.comm import _cantor_pair
from repro.runtime.elastic import epoch_window_id
from repro.runtime.faults import FaultyComm, RankKilledError

BACKENDS = ["thread", "process", "shmem", "socket"]


# ----------------------------------------------------------------------
# epoch tag windows: globally injective, disjoint from split windows
# ----------------------------------------------------------------------
class TestEpochWindowId:
    def test_rejects_non_positive_epochs(self):
        for epoch in (0, -1):
            with pytest.raises(ValueError):
                epoch_window_id(epoch)

    def test_unique_across_epochs(self):
        ids = {epoch_window_id(e) for e in range(1, 201)}
        assert len(ids) == 200

    def test_disjoint_from_split_windows(self):
        # splits produce odd ids (2*slot+1) and nested even ids with a
        # cantor first component >= 1; epoch windows reserve component 0
        epoch_ids = {epoch_window_id(e) for e in range(1, 65)}
        odd_ids = {2 * slot + 1 for slot in range(4096)}
        nested_ids = {
            2 * (_cantor_pair(w, s) + 1) for w in range(1, 9) for s in range(64)
        }
        assert not epoch_ids & odd_ids
        assert not epoch_ids & nested_ids


# ----------------------------------------------------------------------
# kill -> shrink -> bit-identical collectives, every backend
# ----------------------------------------------------------------------
def _kill_shrink_prog(comm):
    vec = np.full(4, float(comm.rank + 1))
    try:
        out = allreduce_recursive_doubling(comm, vec.copy())
        # the kill may land after a survivor already holds its result;
        # the barrier guarantees every survivor observes the dead rank
        comm.barrier()
    except RankFailedError:
        new_world = comm.shrink()
        out = allreduce_recursive_doubling(new_world, vec.copy())
        return (
            "shrunk",
            new_world.epoch,
            new_world.size,
            tuple(float(x) for x in out),
        )
    return ("clean", tuple(float(x) for x in out))


class TestShrinkAfterKill:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_survivors_reform_bit_identical(self, backend):
        victim = 2
        with pytest.raises(RankError) as ei:
            run_ranks(
                _kill_shrink_prog,
                4,
                backend=backend,
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=2),
                timeout=120.0,
            )
        parts = ei.value.partial_results
        assert parts is not None
        assert parts[victim] is None
        # ranks 0, 1, 3 contribute 1+2+4 = 7 per element in the new world
        expected = ("shrunk", 1, 3, (7.0, 7.0, 7.0, 7.0))
        for rank in (0, 1, 3):
            assert parts[rank] == expected, f"rank {rank}: {parts[rank]}"


# ----------------------------------------------------------------------
# full thread-backend cycle: kill -> shrink -> rejoin -> regrow
# ----------------------------------------------------------------------
class TestThreadRejoinCycle:
    def test_shrink_then_rejoin_restores_full_world(self):
        world = ThreadWorld(4, op_timeout=30.0)
        victim = 2
        results: dict[int, object] = {}
        failures: dict[int, object] = {}
        stale: dict[int, object] = {}

        def survivor(rank: int) -> None:
            comm = world.comm(rank)
            vec = np.full(4, float(rank + 1))
            try:
                allreduce_recursive_doubling(comm, vec.copy())
                results[rank] = "unexpected clean finish"
                return
            except RankFailedError as exc:
                failures[rank] = exc.rank
            shrunk = comm.shrink()
            out1 = allreduce_recursive_doubling(shrunk, vec.copy())
            ctx = ElasticContext(shrunk)
            for _ in range(4000):
                if ctx.step().size == 4:
                    break
                time.sleep(0.002)
            grown = ctx.world
            out2 = allreduce_recursive_doubling(grown, vec.copy())
            try:
                shrunk.send(b"x", dest=(rank + 1) % shrunk.size, tag=1)
                stale[rank] = "no error"
            except StaleEpochError as exc:
                stale[rank] = (exc.frame_epoch, exc.current_epoch)
            results[rank] = (
                grown.epoch,
                grown.size,
                tuple(float(x) for x in out1),
                tuple(float(x) for x in out2),
            )

        def reviver() -> None:
            deadline = time.monotonic() + 30.0
            while victim not in world.dead_ranks:
                if time.monotonic() > deadline:
                    results[victim] = "victim never declared dead"
                    return
                time.sleep(0.002)
            comm = thread_rejoin(world, victim, timeout=30.0)
            out = allreduce_recursive_doubling(comm, np.full(4, float(victim + 1)))
            results[victim] = (comm.epoch, comm.size, tuple(float(x) for x in out))

        threads = [
            threading.Thread(target=survivor, args=(r,), daemon=True) for r in (0, 1, 3)
        ]
        for t in threads:
            t.start()
        world.abort(failed_rank=victim)  # simulate the rank dying mid-collective
        rev = threading.Thread(target=reviver, daemon=True)
        rev.start()
        for t in [*threads, rev]:
            t.join(timeout=60.0)
            assert not t.is_alive(), "elastic cycle deadlocked"

        assert failures == {0: victim, 1: victim, 3: victim}
        survivors_sum = (7.0, 7.0, 7.0, 7.0)  # 1+2+4
        full_sum = (10.0, 10.0, 10.0, 10.0)  # 1+2+3+4
        for rank in (0, 1, 3):
            assert results[rank] == (2, 4, survivors_sum, full_sum), results[rank]
            # the superseded epoch-1 world is typed-stale, not silently live
            assert stale[rank] == (1, 2)
        assert results[victim] == (2, 4, full_sum)


# ----------------------------------------------------------------------
# socket backend: crash -> shrink -> serve-rank --rejoin -> stale frames
# ----------------------------------------------------------------------
class TestSocketRejoin:
    def test_crash_shrink_rejoin_and_wire_stale_drop(self):
        victim = 2
        listener = sb._bind_listener("127.0.0.1", 0, 3)
        rendezvous = listener.getsockname()
        listener.close()
        results: dict[int, object] = {}
        crashed = threading.Event()

        def member_prog(comm):
            vec = np.full(4, float(comm.rank + 1))
            if comm.rank == victim:
                # simulated crash: vanish without FIN frames so peers see
                # a mid-run EOF, exactly like a killed process
                for sock in comm._out_socks + comm._in_socks:
                    if sock is not None:
                        sock.close()
                crashed.set()
                return "crashed"
            try:
                allreduce_recursive_doubling(comm, vec.copy())
                comm.barrier()
                return "unexpected clean finish"
            except RankFailedError:
                pass
            shrunk = comm.shrink()
            out1 = allreduce_recursive_doubling(shrunk, vec.copy())
            ctx = ElasticContext(shrunk)
            for _ in range(15000):
                if ctx.step().size == 3:
                    break
                time.sleep(0.002)
            grown = ctx.world
            out2 = allreduce_recursive_doubling(grown, vec.copy())
            # wire-level staleness: a frame stamped with a dead epoch is
            # dropped and counted by the receiver, never delivered
            if comm.rank == 0:
                saved = comm.epoch
                comm.epoch = saved - 1
                comm.send(b"stale", dest=1, tag=77)
                comm.epoch = saved
                comm.send(b"fresh", dest=1, tag=77)
                seen, rejected = None, None
            else:
                seen = bytes(comm.recv(source=0, tag=77))
                rejected = comm.stale_epoch_rejected
            try:
                allreduce_recursive_doubling(shrunk, vec.copy())
                stale_err = "no error"
            except StaleEpochError as exc:
                stale_err = (exc.frame_epoch, exc.current_epoch)
            return (
                grown.epoch,
                grown.size,
                tuple(float(x) for x in out1),
                tuple(float(x) for x in out2),
                stale_err,
                seen,
                rejected,
            )

        def member(rank: int) -> None:
            try:
                results[rank] = sb.serve_rank(
                    rendezvous,
                    rank,
                    3,
                    program=member_prog,
                    elastic=(rank == 0),
                    op_timeout=30.0,
                    rendezvous_timeout=60.0,
                )
            except Exception as exc:  # noqa: BLE001 - surfaced via results
                results[rank] = exc

        def rejoin_prog(comm):
            grown = comm._elastic_world
            out = allreduce_recursive_doubling(
                grown, np.full(4, float(victim + 1))
            )
            return (grown.epoch, grown.size, tuple(float(x) for x in out))

        threads = [
            threading.Thread(target=member, args=(r,), daemon=True) for r in range(3)
        ]
        for t in threads:
            t.start()
        assert crashed.wait(timeout=60.0), "victim never crashed"
        reviver_result: dict[str, object] = {}

        def reviver() -> None:
            try:
                reviver_result["value"] = sb.serve_rank(
                    rendezvous,
                    victim,
                    3,
                    program=rejoin_prog,
                    rejoin=True,
                    rendezvous_timeout=60.0,
                    op_timeout=30.0,
                )
            except Exception as exc:  # noqa: BLE001 - surfaced via dict
                reviver_result["value"] = exc

        rev = threading.Thread(target=reviver, daemon=True)
        rev.start()
        for t in [*threads, rev]:
            t.join(timeout=90.0)
            assert not t.is_alive(), "socket elastic cycle deadlocked"

        assert results.get(victim) == "crashed"
        survivors_sum = (3.0, 3.0, 3.0, 3.0)  # 1+2
        full_sum = (6.0, 6.0, 6.0, 6.0)  # 1+2+3
        for rank in (0, 1):
            value = results[rank]
            assert not isinstance(value, Exception), f"rank {rank}: {value!r}"
            epoch, size, out1, out2, stale_err, seen, rejected = value
            assert (epoch, size) == (2, 3)
            assert out1 == survivors_sum
            assert out2 == full_sum
            assert stale_err == (1, 2)
        # rank 1 received only the fresh copy; the stale frame was counted
        _, _, _, _, _, seen, rejected = results[1]
        assert seen == b"fresh"
        assert rejected >= 1
        assert reviver_result["value"] == (2, 3, full_sum)


# ----------------------------------------------------------------------
# async SGD: shrink-and-continue, then rejoin-and-resume
# ----------------------------------------------------------------------
class TestAsyncSGDElastic:
    def test_shrink_and_continue(self):
        from repro.mlopt import (
            LogisticRegression,
            SGDConfig,
            distributed_sgd_async,
            make_sparse_classification,
        )

        dataset = make_sparse_classification(120, 500, 12, seed=5)
        victim = 2

        def prog(comm):
            cfg = SGDConfig(epochs=6, batch_size=20, lr=0.5, mode="sparse")
            model = LogisticRegression(dataset.n_features, 1e-5)
            return distributed_sgd_async(
                comm, dataset, model, cfg, on_failure="shrink"
            )

        with pytest.raises(RankError) as ei:
            run_ranks(
                prog,
                4,
                backend="thread",
                fault_plan=FaultPlan(kill_rank=victim, kill_after_ops=8),
            )
        err = ei.value
        assert err.partial_results is not None
        for rank, history in enumerate(err.partial_results):
            if rank == victim:
                assert history is None
                continue
            # survivors shrank instead of degrading and kept aggregating
            assert history.degraded_rank is None
            assert len(history.records) == 6
            assert len(history.world_sizes) == 6
            # a survivor whose epoch-0 pipeline drained before the abort
            # legitimately records a 4 for that epoch; a 1 marks an epoch
            # finished on local gradients while the world reformed. Once
            # the first post-shrink epoch lands, every epoch aggregates 3.
            assert set(history.world_sizes) <= {1, 3, 4}
            first_shrunk = history.world_sizes.index(3)
            assert set(history.world_sizes[first_shrunk:]) == {3}
            assert np.isfinite(history.final_loss)

    def test_rejoin_resumes_training(self):
        from repro.mlopt import (
            LogisticRegression,
            SGDConfig,
            distributed_sgd_async,
            make_sparse_classification,
        )

        dataset = make_sparse_classification(160, 400, 10, seed=9)
        cfg = SGDConfig(epochs=10, batch_size=20, lr=0.5, mode="sparse")
        plan = FaultPlan(kill_rank=2, kill_after_ops=8)
        world = ThreadWorld(4, op_timeout=30.0)
        victim = 2
        results: dict[int, object] = {}

        def rank_thread(rank: int) -> None:
            comm = FaultyComm(world.comm(rank), plan)
            model = LogisticRegression(dataset.n_features, 1e-5)
            try:
                results[rank] = distributed_sgd_async(
                    comm, dataset, model, cfg, on_failure="shrink"
                )
            except RankKilledError:
                world.abort(failed_rank=rank)
                results[rank] = "killed"
            except Exception as exc:  # noqa: BLE001 - surfaced via results
                world.abort(failed_rank=rank)
                results[rank] = exc

        def reviver() -> None:
            deadline = time.monotonic() + 30.0
            while victim not in world.dead_ranks:
                if time.monotonic() > deadline:
                    results["reviver"] = "victim never declared dead"
                    return
                time.sleep(0.001)
            try:
                comm = thread_rejoin(world, victim, timeout=45.0)
                model = LogisticRegression(dataset.n_features, 1e-5)
                results["reviver"] = distributed_sgd_async(
                    comm, dataset, model, cfg, on_failure="shrink", resume=True
                )
            except Exception as exc:  # noqa: BLE001 - surfaced via results
                results["reviver"] = exc

        threads = [
            threading.Thread(target=rank_thread, args=(r,), daemon=True)
            for r in range(4)
        ]
        rev = threading.Thread(target=reviver, daemon=True)
        for t in threads:
            t.start()
        rev.start()
        for t in [*threads, rev]:
            t.join(timeout=120.0)
            assert not t.is_alive(), "elastic SGD deadlocked"

        assert results[victim] == "killed"
        revived = results["reviver"]
        assert not isinstance(revived, Exception), repr(revived)
        assert revived.records, "rejoin was never committed before the run ended"
        # the rejoiner aggregated with the full world from its first epoch
        assert set(revived.world_sizes) == {4}
        for rank in (0, 1, 3):
            history = results[rank]
            assert not isinstance(history, (Exception, str)), repr(history)
            assert history.degraded_rank is None
            assert len(history.world_sizes) == cfg.epochs
            # the run shrank to 3 and regrew to 4 without restarting
            assert 3 in history.world_sizes
            assert history.world_sizes[-1] == 4
        # the rejoiner synced the live model: from the grow broadcast on,
        # it applies exactly the aggregated updates the root applies
        root_history = results[0]
        assert np.allclose(root_history.params, revived.params)
