"""Tests for Algorithm 1 (Quantized TopK SGD) and the dense baseline."""

import numpy as np
import pytest

from repro.core import TopKSGDConfig, dense_sgd, quantized_topk_sgd
from repro.runtime import RankError, run_ranks


def make_quadratic(dim: int, nranks: int):
    """A distributed least-squares problem: f(x) = mean_i ||x - c_i||^2 / 2.

    The optimum is the mean of the rank centres; stochastic gradients add
    seeded noise. Used because convergence is provable and checkable.
    """
    centres = [np.random.default_rng(500 + r).standard_normal(dim) * 2 for r in range(nranks)]
    optimum = np.mean(centres, axis=0)

    def grad_fn_for(rank):
        noise_rng = np.random.default_rng(900 + rank)

        def grad_fn(params, step):
            noise = noise_rng.standard_normal(dim) * 0.05
            return ((params - centres[rank]) / nranks + noise).astype(np.float32)

        return grad_fn

    return grad_fn_for, optimum


class TestTopKSGDConvergence:
    @pytest.mark.parametrize("bits", [None, 4, 8])
    def test_converges_to_optimum(self, bits):
        dim, P, steps = 128, 4, 160
        grad_fn_for, optimum = make_quadratic(dim, P)
        # Thm 4.1 asks for diminishing step sizes; the decay also shrinks
        # the stochastic-noise floor the constant-lr iterates would keep.
        cfg = TopKSGDConfig(k=16, bucket_size=64, lr=0.3, lr_decay=0.02, quantizer_bits=bits)

        def prog(comm):
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, steps, cfg)

        out = run_ranks(prog, P)
        err = np.linalg.norm(out[0].params - optimum) / np.linalg.norm(optimum)
        assert err < 0.15, f"bits={bits}: err={err}"

    def test_dense_baseline_converges(self):
        dim, P, steps = 128, 4, 120
        grad_fn_for, optimum = make_quadratic(dim, P)

        def prog(comm):
            return dense_sgd(comm, grad_fn_for(comm.rank), dim, steps, lr=0.25)

        out = run_ranks(prog, P)
        err = np.linalg.norm(out[0].params - optimum) / np.linalg.norm(optimum)
        assert err < 0.1

    def test_topk_matches_dense_final_point(self):
        """With error feedback and diminishing steps (Thm 4.1's regime),
        sparse and dense SGD land near the same point. Constant step sizes
        would leave TopK a larger noise floor (the EF delay amplifies
        gradient noise) — that's expected theory, not a bug."""
        dim, P, steps = 64, 4, 300
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = TopKSGDConfig(k=8, bucket_size=32, lr=0.3, lr_decay=0.01)

        def sparse_prog(comm):
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, steps, cfg)

        def dense_prog(comm):
            return dense_sgd(comm, grad_fn_for(comm.rank), dim, steps, lr=0.3, lr_decay=0.01)

        sp = run_ranks(sparse_prog, P)[0].params
        dn = run_ranks(dense_prog, P)[0].params
        assert np.linalg.norm(sp - dn) / np.linalg.norm(dn) < 0.1


class TestConsistencyAndAccounting:
    def test_replicas_stay_identical(self):
        dim, P = 96, 4
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = TopKSGDConfig(k=8, bucket_size=48, lr=0.2, quantizer_bits=4)

        def prog(comm):
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, 30, cfg)

        out = run_ranks(prog, P)
        for r in range(1, P):
            assert np.array_equal(out[r].params, out[0].params)

    def test_bytes_per_step_recorded(self):
        dim, P = 256, 2
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = TopKSGDConfig(k=4, bucket_size=128, lr=0.1)

        def prog(comm):
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, 10, cfg)

        out = run_ranks(prog, P)
        assert len(out[0].bytes_sent_per_step) == 10
        assert out[0].mean_bytes_per_step > 0

    def test_quantization_shrinks_wire_bytes(self):
        dim, P = 1 << 14, 2
        grad_fn_for, _ = make_quadratic(dim, P)

        def prog(comm, bits):
            cfg = TopKSGDConfig(k=8, bucket_size=512, lr=0.1, quantizer_bits=bits)
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, 5, cfg)

        fp = run_ranks(prog, P, None)[0].mean_bytes_per_step
        q4 = run_ranks(prog, P, 4)[0].mean_bytes_per_step
        assert q4 < fp
        # index bytes dominate: 4+4 fp pairs -> 4+0.5ish quantized
        assert q4 / fp < 0.75

    def test_sparse_sends_far_fewer_bytes_than_dense(self):
        dim, P = 1 << 14, 2
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = TopKSGDConfig(k=4, bucket_size=512, lr=0.1)

        def sparse_prog(comm):
            return quantized_topk_sgd(comm, grad_fn_for(comm.rank), dim, 5, cfg)

        def dense_prog(comm):
            return dense_sgd(comm, grad_fn_for(comm.rank), dim, 5, lr=0.1)

        sp = run_ranks(sparse_prog, P)[0].mean_bytes_per_step
        dn = run_ranks(dense_prog, P)[0].mean_bytes_per_step
        assert dn / sp > 20

    def test_eval_history(self):
        dim, P = 32, 2
        grad_fn_for, optimum = make_quadratic(dim, P)
        cfg = TopKSGDConfig(k=8, bucket_size=32, lr=0.3)

        def prog(comm):
            return quantized_topk_sgd(
                comm, grad_fn_for(comm.rank), dim, 21, cfg,
                eval_fn=lambda p: {"dist": float(np.linalg.norm(p - optimum))},
                eval_every=10,
            )

        out = run_ranks(prog, P)
        hist = out[0].history
        assert [h["step"] for h in hist] == [0, 10, 20]
        assert hist[-1]["dist"] < hist[0]["dist"]

    def test_lr_schedule(self):
        cfg = TopKSGDConfig(k=1, lr=1.0, lr_decay=0.5)
        assert cfg.learning_rate(0) == 1.0
        assert cfg.learning_rate(2) == pytest.approx(0.5)

    def test_bad_grad_shape_raises(self):
        cfg = TopKSGDConfig(k=1)

        def prog(comm):
            return quantized_topk_sgd(comm, lambda p, s: np.zeros(3, np.float32), 5, 1, cfg)

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_negative_steps_rejected(self):
        cfg = TopKSGDConfig(k=1)

        def prog(comm):
            return quantized_topk_sgd(comm, lambda p, s: np.zeros(5, np.float32), 5, -1, cfg)

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_init_params_used(self):
        dim, P = 16, 2
        init = np.full(dim, 7.0, dtype=np.float32)
        cfg = TopKSGDConfig(k=1, bucket_size=16, lr=0.0)

        def prog(comm):
            return quantized_topk_sgd(
                comm, lambda p, s: np.zeros(dim, np.float32), dim, 1, cfg, init_params=init
            )

        out = run_ranks(prog, P)
        assert np.allclose(out[0].params, 7.0)
