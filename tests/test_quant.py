"""Tests for QSGD quantization and bit packing (§6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    QSGDQuantizer,
    pack_integers,
    packed_nbytes,
    quantization_variance_bound,
    unpack_integers,
)


class TestPacking:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_roundtrip(self, bits, rng):
        codes = rng.integers(0, 1 << bits, size=77).astype(np.uint8)
        packed = pack_integers(codes, bits)
        assert np.array_equal(unpack_integers(packed, bits, 77), codes)

    @pytest.mark.parametrize("bits,count,expected", [(8, 10, 10), (4, 10, 5), (2, 10, 3), (1, 10, 2)])
    def test_packed_nbytes(self, bits, count, expected):
        assert packed_nbytes(count, bits) == expected

    def test_empty(self):
        assert pack_integers(np.empty(0, np.uint8), 4).size == 0
        assert unpack_integers(np.empty(0, np.uint8), 4, 0).size == 0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            pack_integers(np.array([16], np.uint8), 4)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_integers(np.array([1], np.uint8), 3)

    def test_count_larger_than_buffer_rejected(self):
        with pytest.raises(ValueError):
            unpack_integers(np.zeros(1, np.uint8), 4, 3)

    def test_compression_factor(self):
        assert packed_nbytes(1024, 4) == 512
        assert packed_nbytes(1024, 2) == 256

    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 2**31),
        n=st.integers(0, 300),
    )
    def test_property_roundtrip(self, bits, seed, n):
        gen = np.random.default_rng(seed)
        codes = gen.integers(0, 1 << bits, size=n).astype(np.uint8)
        assert np.array_equal(unpack_integers(pack_integers(codes, bits), bits, n), codes)


class TestQSGD:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip_error_bounded(self, bits, rng):
        """Per-entry error <= bucket_norm / levels."""
        q = QSGDQuantizer(bits=bits, bucket_size=64, seed=0)
        v = rng.standard_normal(256).astype(np.float32)
        out = q.roundtrip(v)
        levels = (1 << (bits - 1)) - 1
        starts = np.arange(0, 256, 64)
        norms = np.sqrt(np.add.reduceat((v.astype(np.float64)) ** 2, starts))
        bound = np.repeat(norms, 64) / levels
        assert np.all(np.abs(out - v) <= bound * (1 + 1e-5))

    def test_zero_vector(self):
        q = QSGDQuantizer(bits=4, bucket_size=16, seed=0)
        out = q.roundtrip(np.zeros(40, dtype=np.float32))
        assert np.array_equal(out, np.zeros(40, dtype=np.float32))

    def test_empty_vector(self):
        q = QSGDQuantizer(bits=4, seed=0)
        block = q.quantize(np.empty(0, dtype=np.float32))
        assert block.length == 0
        assert q.dequantize(block).size == 0

    def test_sign_preserved(self, rng):
        q = QSGDQuantizer(bits=8, bucket_size=32, seed=1)
        v = rng.standard_normal(128).astype(np.float32)
        out = q.roundtrip(v)
        nz = out != 0
        assert np.all(np.sign(out[nz]) == np.sign(v[nz]))

    def test_unbiasedness(self):
        """E[Q(v)] ~= v: average many independent quantizations."""
        v = np.array([0.3, -0.7, 0.05, 0.9, -0.2], dtype=np.float32)
        trials = 3000
        acc = np.zeros(5, dtype=np.float64)
        q = QSGDQuantizer(bits=2, bucket_size=5, seed=99)
        for _ in range(trials):
            acc += q.roundtrip(v)
        mean = acc / trials
        norm = float(np.linalg.norm(v))
        # standard error of the level estimate is <= norm/sqrt(trials)
        assert np.all(np.abs(mean - v) < 4 * norm / np.sqrt(trials))

    def test_deterministic_mode_round_to_nearest(self):
        q = QSGDQuantizer(bits=8, bucket_size=4, seed=0, stochastic=False)
        v = np.array([1.0, 0.0, 0.0, 0.0], dtype=np.float32)  # norm = 1
        out = q.roundtrip(v)
        assert out[0] == pytest.approx(1.0, abs=1e-6)

    def test_last_partial_bucket(self, rng):
        q = QSGDQuantizer(bits=4, bucket_size=64, seed=0)
        v = rng.standard_normal(100).astype(np.float32)  # 64 + 36
        block = q.quantize(v)
        assert block.scales.shape == (2,)
        assert q.dequantize(block).shape == (100,)

    def test_wire_bytes_smaller_than_dense(self):
        q = QSGDQuantizer(bits=4, bucket_size=512, seed=0)
        v = np.ones(4096, dtype=np.float32)
        block = q.quantize(v)
        assert block.nbytes_payload < v.nbytes // 4  # >4x compression

    def test_compression_ratio(self):
        q = QSGDQuantizer(bits=4, bucket_size=512)
        # 4-bit + scale overhead: close to 8x for float32
        assert 7.0 < q.compression_ratio(1 << 16) <= 8.0

    def test_seeded_reproducibility(self, rng):
        v = rng.standard_normal(64).astype(np.float32)
        out1 = QSGDQuantizer(bits=4, bucket_size=16, seed=5).roundtrip(v)
        out2 = QSGDQuantizer(bits=4, bucket_size=16, seed=5).roundtrip(v)
        assert np.array_equal(out1, out2)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(bits=3)

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(bits=4, bucket_size=0)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(bits=4).quantize(np.zeros((2, 2), dtype=np.float32))

    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.sampled_from([2, 4, 8]),
        bucket=st.sampled_from([8, 64, 512]),
        seed=st.integers(0, 2**31),
        n=st.integers(1, 600),
    )
    def test_property_error_within_qsgd_bound(self, bits, bucket, seed, n):
        gen = np.random.default_rng(seed)
        v = (gen.standard_normal(n) * gen.exponential(1.0)).astype(np.float32)
        q = QSGDQuantizer(bits=bits, bucket_size=bucket, seed=seed)
        out = q.roundtrip(v)
        levels = (1 << (bits - 1)) - 1
        starts = np.arange(0, n, bucket)
        norms = np.sqrt(np.add.reduceat(v.astype(np.float64) ** 2, starts))
        lengths = np.diff(np.append(starts, n))
        bound = np.repeat(norms, lengths) / levels
        assert np.all(np.abs(out.astype(np.float64) - v) <= bound + 1e-6)


class TestVarianceBound:
    def test_matches_qsgd_paper_form(self):
        # s=7 (4 bits), d=512: 1 + min(512/49, sqrt(512)/7)
        expected = 1 + min(512 / 49, np.sqrt(512) / 7)
        assert quantization_variance_bound(4, 512) == pytest.approx(expected)

    def test_more_bits_less_variance(self):
        assert quantization_variance_bound(8, 512) < quantization_variance_bound(4, 512)
        assert quantization_variance_bound(4, 512) < quantization_variance_bound(2, 512)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantization_variance_bound(1, 512)
