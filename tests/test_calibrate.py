"""Tests for network calibration (`repro/costmodel/calibrate.py`) and the
persisted-model plumbing (`save_network`/`load_network`,
`resolve_network("calibrated:<path>")`)."""

import json

import pytest

from repro.costmodel import (
    CostModel,
    Instance,
    SelectionReport,
    calibrate_from_doc,
    fit_alpha_beta,
    fit_gamma,
    run_calibration,
)
from repro.costmodel.calibrate import _PAIR_BYTES, _wire_bytes, calibrated_cost_model
from repro.netsim import (
    GIGE,
    PRESETS,
    TIERED_GIGE,
    load_network,
    resolve_network,
    save_network,
)


class TestFits:
    def test_exact_line_recovered(self):
        alpha, beta = 3e-5, 2e-9
        sizes = [1e3, 1e4, 1e5, 1e6]
        times = [alpha + beta * s for s in sizes]
        fa, fb = fit_alpha_beta(sizes, times)
        assert fa == pytest.approx(alpha)
        assert fb == pytest.approx(beta)

    def test_single_point_is_all_latency(self):
        assert fit_alpha_beta([4096.0], [1e-4]) == (1e-4, 0.0)

    def test_negative_fits_clamped(self):
        # decreasing times give a negative slope; the fit must clamp
        alpha, beta = fit_alpha_beta([1e3, 1e6], [1e-3, 1e-6])
        assert alpha >= 0.0 and beta == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_alpha_beta([], [])
        with pytest.raises(ValueError):
            fit_alpha_beta([1.0], [1.0, 2.0])

    def test_fit_gamma(self):
        micro = {
            "params": {"nnz": 1000},
            "merge_sparse_pairs_scratch": {"best_s": 4e-6},
        }
        assert fit_gamma(micro) == pytest.approx(4e-6 / (2 * 1000 * _PAIR_BYTES))


def _synthetic_bench(dimension=4096):
    """A bench-kernels-shaped document with known underlying parameters."""
    intra = {"alpha": 5e-6, "beta": 5e-10}
    inter = {"alpha": 4e-5, "beta": 4e-9}
    transport = {}
    for backend, p in (("shmem", intra), ("socket", inter)):
        rows = {}
        for nnz in (40, 400, 1200):
            wire = _wire_bytes(dimension, nnz)
            one_way = p["alpha"] + p["beta"] * wire
            rows[f"nnz_{nnz}"] = {"best_s": 2 * one_way, "median_s": 2 * one_way, "n": 5}
        transport[backend] = rows
    micro = {
        "params": {"dimension": dimension, "nnz": 100, "wire_bytes": 816},
        "merge_sparse_pairs_scratch": {"best_s": 1.6e-6, "median_s": 1.6e-6, "n": 5},
    }
    return transport, micro, intra, inter


class TestCalibrateFromDoc:
    def test_recovers_parameters(self):
        transport, micro, intra, inter = _synthetic_bench()
        model, provenance = calibrate_from_doc(transport, micro, 4096, name="fit")
        assert model.name == "fit" and model.shared_uplink
        assert model.intra.alpha == pytest.approx(intra["alpha"], rel=1e-6)
        assert model.intra.beta == pytest.approx(intra["beta"], rel=1e-6)
        assert model.inter.alpha == pytest.approx(inter["alpha"], rel=1e-6)
        assert model.inter.beta == pytest.approx(inter["beta"], rel=1e-6)
        assert model.gamma == pytest.approx(1.6e-6 / (2 * 100 * _PAIR_BYTES))
        assert provenance["fits"]["intra"]["backend"] == "shmem"
        assert provenance["fits"]["inter"]["backend"] == "socket"
        assert len(provenance["fits"]["inter"]["points"]) == 3

    def test_needs_two_sizes(self):
        transport, micro, _, _ = _synthetic_bench()
        transport["shmem"] = {"nnz_40": transport["shmem"]["nnz_40"]}
        transport.pop("process", None)
        with pytest.raises(ValueError, match="2 transport round-trip sizes"):
            calibrate_from_doc(transport, micro, 4096)


class TestSaveLoad:
    def test_tiered_round_trip(self, tmp_path):
        path = save_network(TIERED_GIGE, tmp_path / "net.json", provenance={"x": 1})
        loaded = load_network(path)
        assert loaded.name == TIERED_GIGE.name
        assert loaded.intra.alpha == TIERED_GIGE.intra.alpha
        assert loaded.inter.beta == TIERED_GIGE.inter.beta
        assert loaded.shared_uplink == TIERED_GIGE.shared_uplink
        assert json.loads(path.read_text())["provenance"] == {"x": 1}

    def test_flat_round_trip(self, tmp_path):
        path = save_network(GIGE, tmp_path / "flat.json")
        loaded = load_network(path)
        assert loaded.alpha == GIGE.alpha and loaded.gamma == GIGE.gamma

    def test_load_errors(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            load_network(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_network(bad)
        weird = tmp_path / "weird.json"
        weird.write_text(json.dumps({"kind": "mesh", "name": "x"}))
        with pytest.raises(ValueError, match="kind"):
            load_network(weird)

    def test_resolve_calibrated_spec(self, tmp_path):
        path = save_network(TIERED_GIGE, tmp_path / "net.json")
        model = resolve_network(f"calibrated:{path}")
        assert model.inter.alpha == TIERED_GIGE.inter.alpha

    def test_unknown_spec_error_lists_everything(self):
        """The error must teach all three spec syntaxes."""
        with pytest.raises(ValueError) as err:
            resolve_network("warp-drive")
        message = str(err.value)
        for preset in sorted(PRESETS):
            assert preset in message
        assert "tiered:INTRA/INTER" in message
        assert "calibrated:<path.json>" in message
        assert "repro calibrate" in message


class TestRunCalibration:
    def test_reuses_bench_document(self, tmp_path):
        transport, micro, intra, _ = _synthetic_bench()
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "schema": 5,
            "params": {"dimension": 4096},
            "transport_roundtrip": transport,
            "microkernels": micro,
        }))
        model, path, provenance = run_calibration(
            out=tmp_path / "cal.json", bench=bench, name="reused"
        )
        assert path.exists()
        assert provenance["reused_bench"] == str(bench)
        assert model.intra.alpha == pytest.approx(intra["alpha"], rel=1e-6)

    def test_calibrated_path_drives_selection_end_to_end(self, tmp_path):
        """The acceptance pin: calibrate -> `calibrated:<path>` ->
        SelectionReport, all consistent and JSON-round-trippable."""
        transport, micro, _, _ = _synthetic_bench()
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "params": {"dimension": 4096},
            "transport_roundtrip": transport,
            "microkernels": micro,
        }))
        _, path, _ = run_calibration(out=tmp_path / "cal.json", bench=bench)
        model = CostModel.resolve(f"calibrated:{path}")
        assert model.tiered and model.name == "calibrated"
        report = model.rank(Instance(4096, 4, 300))
        # synthetic parameters are deterministic -> the choice is pinned
        assert report.choice == "ssar_rec_dbl"
        assert report.network == "calibrated"
        round_tripped = SelectionReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert round_tripped == report
        assert calibrated_cost_model(path).rank(
            Instance(4096, 4, 300)
        ).choice == report.choice

    def test_cli_calibrate_subcommand(self, tmp_path, capsys):
        from repro.tools.cli import main

        transport, micro, _, _ = _synthetic_bench()
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "params": {"dimension": 4096},
            "transport_roundtrip": transport,
            "microkernels": micro,
        }))
        out = tmp_path / "cli_cal.json"
        rc = main([
            "calibrate", "--bench", str(bench), "--out", str(out), "--name", "clifit",
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "clifit" in stdout and "wrote" in stdout
        assert load_network(out).name == "clifit"
