"""Tests for momentum correction and sparsity warm-up (§8.4, DGC [38])."""

import numpy as np
import pytest

from repro.core import DGCConfig, WarmupSchedule, dgc_sgd
from repro.runtime import RankError, run_ranks


def make_quadratic(dim, nranks, noise=0.02):
    centres = [np.random.default_rng(500 + r).standard_normal(dim) * 2 for r in range(nranks)]
    optimum = np.mean(centres, axis=0)

    def grad_fn_for(rank):
        g = np.random.default_rng(900 + rank)

        def fn(params, step):
            return ((params - centres[rank]) / nranks + g.standard_normal(dim) * noise).astype(
                np.float32
            )

        return fn

    return grad_fn_for, optimum


class TestWarmupSchedule:
    def test_no_warmup_is_constant(self):
        sched = WarmupSchedule(k_target=4, bucket_size=512, warmup_steps=0)
        assert [sched.k_at(t) for t in range(5)] == [4] * 5

    def test_starts_dense_ends_at_target(self):
        sched = WarmupSchedule(k_target=4, bucket_size=512, warmup_steps=10)
        assert sched.k_at(0) == 128  # 25% of the bucket
        assert sched.k_at(10) == 4
        assert sched.k_at(100) == 4

    def test_monotone_decay(self):
        sched = WarmupSchedule(k_target=2, bucket_size=256, warmup_steps=20)
        ks = [sched.k_at(t) for t in range(25)]
        assert all(a >= b for a, b in zip(ks, ks[1:]))
        assert min(ks) == 2

    def test_target_above_dense_fraction(self):
        # if the target is already denser than the warm-up start, stay there
        sched = WarmupSchedule(k_target=200, bucket_size=512, warmup_steps=10)
        assert sched.k_at(0) == 200


class TestDGCSGD:
    def test_converges_on_quadratic(self):
        dim, P = 128, 4
        grad_fn_for, optimum = make_quadratic(dim, P)
        cfg = DGCConfig(k=4, bucket_size=64, lr=0.1, momentum=0.5, warmup_steps=20, lr_decay=0.02)

        def prog(comm):
            return dgc_sgd(comm, grad_fn_for(comm.rank), dim, 200, cfg)

        out = run_ranks(prog, P)
        err = np.linalg.norm(out[0].params - optimum) / np.linalg.norm(optimum)
        assert err < 0.2

    def test_replicas_identical(self):
        dim, P = 64, 4
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = DGCConfig(k=4, bucket_size=32, lr=0.05, momentum=0.9)

        def prog(comm):
            return dgc_sgd(comm, grad_fn_for(comm.rank), dim, 30, cfg)

        out = run_ranks(prog, P)
        for r in range(1, P):
            assert np.array_equal(out[r].params, out[0].params)

    def test_warmup_sends_more_bytes_early(self):
        dim, P = 1 << 13, 2
        grad_fn_for, _ = make_quadratic(dim, P)
        cfg = DGCConfig(k=2, bucket_size=512, lr=0.05, momentum=0.9, warmup_steps=30)

        def prog(comm):
            return dgc_sgd(comm, grad_fn_for(comm.rank), dim, 40, cfg)

        out = run_ranks(prog, P)
        per_step = out[0].bytes_sent_per_step
        # warm-up phase (dense-ish) must send much more than steady state
        assert per_step[0] > 10 * per_step[-1]
        # decreasing through warm-up
        assert per_step[0] >= per_step[10] >= per_step[29] >= per_step[-1]

    def test_momentum_correction_beats_no_momentum_on_ill_conditioned(self):
        """On an ill-conditioned quadratic, corrected momentum converges
        faster than plain TopK SGD at matched effective step sizes."""
        from repro.core import TopKSGDConfig, quantized_topk_sgd

        dim, P = 64, 2
        scales = np.logspace(0, 1.3, dim)  # condition number ~20
        centre = np.random.default_rng(7).standard_normal(dim)

        def grad_fn_for(rank):
            g = np.random.default_rng(40 + rank)

            def fn(params, step):
                return (scales * (params - centre) / P
                        + g.standard_normal(dim) * 0.01).astype(np.float32)

            return fn

        steps = 150
        m = 0.9
        dgc_cfg = DGCConfig(k=8, bucket_size=32, lr=0.02 , momentum=m, lr_decay=0.01)
        plain_cfg = TopKSGDConfig(k=8, bucket_size=32, lr=0.02 / (1 - m), lr_decay=0.01)

        dgc_out = run_ranks(lambda c: dgc_sgd(c, grad_fn_for(c.rank), dim, steps, dgc_cfg), P)
        plain_out = run_ranks(
            lambda c: quantized_topk_sgd(c, grad_fn_for(c.rank), dim, steps, plain_cfg), P
        )
        err = lambda p: np.linalg.norm(p - centre) / np.linalg.norm(centre)
        assert err(dgc_out[0].params) < err(plain_out[0].params) * 1.5

    def test_quantized_variant(self):
        dim, P = 128, 4
        grad_fn_for, optimum = make_quadratic(dim, P)
        cfg = DGCConfig(
            k=8, bucket_size=64, lr=0.1, momentum=0.5, lr_decay=0.02, quantizer_bits=8
        )

        def prog(comm):
            return dgc_sgd(comm, grad_fn_for(comm.rank), dim, 200, cfg)

        out = run_ranks(prog, P)
        err = np.linalg.norm(out[0].params - optimum) / np.linalg.norm(optimum)
        assert err < 0.25

    def test_eval_history(self):
        dim, P = 32, 2
        grad_fn_for, optimum = make_quadratic(dim, P)
        cfg = DGCConfig(k=4, bucket_size=16, lr=0.1, momentum=0.5)

        def prog(comm):
            return dgc_sgd(
                comm, grad_fn_for(comm.rank), dim, 11, cfg,
                eval_fn=lambda p: {"d": float(np.linalg.norm(p - optimum))},
                eval_every=5,
            )

        out = run_ranks(prog, P)
        assert [h["step"] for h in out[0].history] == [0, 5, 10]

    def test_invalid_momentum(self):
        cfg = DGCConfig(k=1, momentum=1.0)

        def prog(comm):
            return dgc_sgd(comm, lambda p, s: np.zeros(4, np.float32), 4, 1, cfg)

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_bad_grad_shape(self):
        cfg = DGCConfig(k=1)

        def prog(comm):
            return dgc_sgd(comm, lambda p, s: np.zeros(3, np.float32), 4, 1, cfg)

        with pytest.raises(RankError):
            run_ranks(prog, 2)
