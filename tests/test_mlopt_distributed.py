"""Tests for the distributed SGD and SCD drivers (MPI-OPT, §8.2)."""

import numpy as np
import pytest

from repro.mlopt import (
    LinearSVM,
    LogisticRegression,
    SCDConfig,
    SGDConfig,
    distributed_scd,
    distributed_sgd,
    make_sparse_classification,
)
from repro.runtime import run_ranks


@pytest.fixture(scope="module")
def dataset():
    return make_sparse_classification(240, 3000, 25, seed=21)


def run_sgd(dataset, nranks, mode, algorithm="auto", epochs=2, model_cls=LogisticRegression):
    def prog(comm):
        model = model_cls(dataset.n_features, reg=1e-5)
        cfg = SGDConfig(epochs=epochs, batch_size=30, lr=0.8, mode=mode, algorithm=algorithm)
        return distributed_sgd(comm, dataset, model, cfg)

    return run_ranks(prog, nranks)


class TestDistributedSGD:
    def test_sparse_equals_dense_exactly(self, dataset):
        """Natural-sparsity communication is lossless: identical params."""
        sparse_out = run_sgd(dataset, 4, "sparse")
        dense_out = run_sgd(dataset, 4, "dense", "dense_rabenseifner")
        assert np.allclose(sparse_out[0].params, dense_out[0].params, atol=1e-5)

    def test_loss_decreases(self, dataset):
        out = run_sgd(dataset, 4, "sparse", epochs=4)
        losses = out[0].losses
        assert losses[-1] < losses[0]

    def test_ranks_agree_on_history(self, dataset):
        out = run_sgd(dataset, 4, "sparse")
        for r in range(1, 4):
            assert out[r].losses == out[0].losses

    @pytest.mark.parametrize("algorithm", ["ssar_rec_dbl", "ssar_split_ag", "dsar_split_ag"])
    def test_all_collectives_agree(self, dataset, algorithm):
        auto = run_sgd(dataset, 4, "sparse", "auto")
        other = run_sgd(dataset, 4, "sparse", algorithm)
        assert np.allclose(auto[0].params, other[0].params, atol=1e-4)

    def test_svm_variant(self, dataset):
        out = run_sgd(dataset, 4, "sparse", model_cls=LinearSVM, epochs=3)
        assert out[0].final_loss < 1.0  # below the w=0 hinge loss

    def test_sparse_moves_fewer_bytes(self, dataset):
        sparse_out = run_sgd(dataset, 4, "sparse")
        dense_out = run_sgd(dataset, 4, "dense")
        assert sparse_out.trace.total_bytes_sent < dense_out.trace.total_bytes_sent / 2

    def test_gradient_nnz_recorded(self, dataset):
        out = run_sgd(dataset, 2, "sparse")
        assert out[0].records[0].grad_nnz_mean > 0

    def test_bytes_per_epoch_recorded(self, dataset):
        out = run_sgd(dataset, 2, "sparse")
        assert all(r.bytes_sent > 0 for r in out[0].records)

    def test_non_power_of_two_ranks(self, dataset):
        out = run_sgd(dataset, 3, "sparse")
        assert len(out[0].losses) == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SGDConfig(mode="nope")
        with pytest.raises(ValueError):
            SGDConfig(batch_size=0)


class TestDistributedSCD:
    def run_scd(self, dataset, nranks, mode, iters=20):
        def prog(comm):
            model = LogisticRegression(dataset.n_features, reg=1e-5)
            cfg = SCDConfig(
                epochs=2, iterations_per_epoch=iters, block_size=50, lr=0.8, mode=mode
            )
            return distributed_scd(comm, dataset, model, cfg)

        return run_ranks(prog, nranks)

    def test_sparse_equals_dense(self, dataset):
        sp_out = self.run_scd(dataset, 4, "sparse")
        dn_out = self.run_scd(dataset, 4, "dense")
        assert np.allclose(sp_out[0].params, dn_out[0].params, atol=1e-5)

    def test_loss_decreases(self, dataset):
        out = self.run_scd(dataset, 4, "sparse", iters=40)
        assert out[0].final_loss < np.log(2)

    def test_sparse_allgather_moves_fewer_bytes(self, dataset):
        """The §8.2 SCD claim: sparse allgather ~ 5x less communication."""
        sp_out = self.run_scd(dataset, 4, "sparse")
        dn_out = self.run_scd(dataset, 4, "dense")
        assert dn_out.trace.total_bytes_sent / sp_out.trace.total_bytes_sent > 3

    def test_updates_stay_in_rank_slices(self, dataset):
        """Each rank's updates live in its coordinate slice (disjointness)."""
        from repro.collectives import partition_bounds

        out = self.run_scd(dataset, 4, "sparse", iters=5)
        # all ranks end with identical parameters despite disjoint updates
        for r in range(1, 4):
            assert np.allclose(out[r].params, out[0].params)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            SCDConfig(mode="invalid")
