"""Tests for TopK selection and the error-feedback residual (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ErrorFeedback,
    quantize_stream_values,
    topk_bucket_indices,
    topk_global_indices,
    topk_stream,
)
from repro.quant import QSGDQuantizer
from repro.streams import SparseStream


class TestGlobalTopK:
    def test_selects_largest_magnitudes(self):
        v = np.array([1.0, -5.0, 0.5, 3.0, -0.1])
        idx = topk_global_indices(v, 2)
        assert set(idx.tolist()) == {1, 3}

    def test_indices_sorted(self, rng):
        v = rng.standard_normal(100)
        idx = topk_global_indices(v, 17)
        assert np.all(np.diff(idx.astype(np.int64)) > 0)

    def test_k_zero(self):
        assert topk_global_indices(np.ones(5), 0).size == 0

    def test_k_full(self):
        assert topk_global_indices(np.ones(5), 5).size == 5

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            topk_global_indices(np.ones(5), 6)

    def test_magnitude_threshold_property(self, rng):
        v = rng.standard_normal(200)
        idx = topk_global_indices(v, 20)
        selected_min = np.abs(v[idx.astype(np.int64)]).min()
        mask = np.ones(200, dtype=bool)
        mask[idx.astype(np.int64)] = False
        unselected_max = np.abs(v[mask]).max()
        assert selected_min >= unselected_max - 1e-12


class TestBucketTopK:
    def test_per_bucket_count(self, rng):
        v = rng.standard_normal(512 * 4)
        idx = topk_bucket_indices(v, 8, 512)
        assert idx.size == 8 * 4
        buckets = idx.astype(np.int64) // 512
        assert np.all(np.bincount(buckets, minlength=4) == 8)

    def test_partial_last_bucket(self, rng):
        v = rng.standard_normal(100)  # one bucket of 64 + tail of 36
        idx = topk_bucket_indices(v, 4, 64)
        assert idx.size == 8
        assert np.sum(idx >= 64) == 4

    def test_tail_shorter_than_k(self, rng):
        v = rng.standard_normal(66)
        idx = topk_bucket_indices(v, 4, 64)
        assert idx.size == 4 + 2

    def test_k_larger_than_bucket_selects_all(self, rng):
        v = rng.standard_normal(32)
        idx = topk_bucket_indices(v, 100, 16)
        assert idx.size == 32

    def test_selects_bucket_maxima(self):
        v = np.zeros(8)
        v[1], v[6] = 5.0, -7.0
        idx = topk_bucket_indices(v, 1, 4)
        assert set(idx.tolist()) == {1, 6}

    def test_empty_vector(self):
        assert topk_bucket_indices(np.empty(0), 4, 16).size == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            topk_bucket_indices(np.ones(4), 1, 0)
        with pytest.raises(ValueError):
            topk_bucket_indices(np.ones(4), -1, 2)


class TestTopKStream:
    def test_global_mode(self, rng):
        v = rng.standard_normal(64).astype(np.float32)
        s = topk_stream(v, 5)
        assert s.nnz == 5
        dense = s.to_dense()
        assert np.allclose(dense[dense != 0], v[s.indices.astype(np.int64)])

    def test_bucket_mode(self, rng):
        v = rng.standard_normal(128).astype(np.float32)
        s = topk_stream(v, 2, bucket_size=32)
        assert s.nnz == 8


class TestErrorFeedback:
    def test_invariant_sent_plus_residual(self, rng):
        """dense(sent) + residual == accumulator, exactly."""
        ef = ErrorFeedback(100, k=5, value_dtype=np.float64)
        for _ in range(5):
            g = rng.standard_normal(100)
            acc_expected = ef.residual + g
            sent = ef.select(g)
            assert np.allclose(sent.to_dense() + ef.residual, acc_expected, atol=1e-12)

    def test_residual_zero_at_selected(self, rng):
        ef = ErrorFeedback(50, k=10)
        sent = ef.select(rng.standard_normal(50).astype(np.float32))
        assert np.all(ef.residual[sent.indices.astype(np.int64)] == 0.0)

    def test_unselected_mass_carries_over(self):
        ef = ErrorFeedback(4, k=1, value_dtype=np.float64)
        ef.select(np.array([1.0, 0.5, 0.0, 0.0]))
        # index 0 sent, 0.5 retained; next tiny gradient: retained wins
        sent2 = ef.select(np.array([0.0, 0.0, 0.1, 0.0]))
        assert sent2.indices[0] == 1
        assert sent2.values[0] == pytest.approx(0.5)

    def test_bucket_mode(self, rng):
        ef = ErrorFeedback(128, k=2, bucket_size=32)
        sent = ef.select(rng.standard_normal(128).astype(np.float32))
        assert sent.nnz == 8

    def test_reset(self, rng):
        ef = ErrorFeedback(20, k=2)
        ef.select(rng.standard_normal(20).astype(np.float32))
        ef.reset()
        assert ef.residual_norm == 0.0

    def test_shape_mismatch(self):
        ef = ErrorFeedback(10, k=1)
        with pytest.raises(ValueError):
            ef.select(np.zeros(11, dtype=np.float32))

    @settings(max_examples=30, deadline=None)
    @given(
        dim=st.integers(min_value=1, max_value=200),
        steps=st.integers(min_value=1, max_value=6),
        seed=st.integers(0, 2**31),
    )
    def test_property_no_gradient_mass_lost(self, dim, steps, seed):
        """Over any run: sum(sent) + residual == sum(gradients) exactly.

        This is the lossless-accounting property that makes TopK SGD
        convergent (Appendix C tracks exactly this quantity).
        """
        gen = np.random.default_rng(seed)
        k = int(gen.integers(1, dim + 1))
        ef = ErrorFeedback(dim, k=k, value_dtype=np.float64)
        total_grad = np.zeros(dim)
        total_sent = np.zeros(dim)
        for _ in range(steps):
            g = gen.standard_normal(dim)
            total_grad += g
            total_sent += ef.select(g).to_dense()
        assert np.allclose(total_sent + ef.residual, total_grad, atol=1e-9)


class TestQuantizeStreamValues:
    def test_values_quantized_support_unchanged(self, rng):
        s = SparseStream.random_uniform(1000, nnz=64, rng=rng)
        q = QSGDQuantizer(bits=8, bucket_size=64, seed=0)
        out = quantize_stream_values(s, q)
        assert np.array_equal(out.indices, s.indices)
        err = np.abs(out.values.astype(np.float64) - s.values)
        norm = np.linalg.norm(s.values)
        assert np.all(err <= norm / 127 + 1e-6)

    def test_wire_bytes_annotation(self, rng):
        s = SparseStream.random_uniform(1 << 16, nnz=512, rng=rng)
        q = QSGDQuantizer(bits=4, bucket_size=512, seed=0)
        out = quantize_stream_values(s, q)
        assert out.value_wire_bytes is not None
        assert out.nbytes_payload < s.nbytes_payload

    def test_empty_stream(self):
        q = QSGDQuantizer(bits=4, seed=0)
        out = quantize_stream_values(SparseStream.zeros(100), q)
        assert out.nnz == 0
        assert out.value_wire_bytes == 0.5

    def test_dense_rejected(self):
        q = QSGDQuantizer(bits=4, seed=0)
        with pytest.raises(ValueError):
            quantize_stream_values(
                SparseStream(4, dense=np.zeros(4, dtype=np.float32)), q
            )
