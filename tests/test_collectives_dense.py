"""Tests for the dense allreduce baselines against numpy reference sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    dense_allreduce,
    partition_bounds,
)
from repro.runtime import run_ranks

ALGOS = {
    "rec_dbl": allreduce_recursive_doubling,
    "ring": allreduce_ring,
    "rabenseifner": allreduce_rabenseifner,
}


def make_vec(rank: int, n: int) -> np.ndarray:
    return np.random.default_rng(31 + rank).standard_normal(n).astype(np.float32)


def run_allreduce(algo, nranks: int, n: int):
    out = run_ranks(lambda comm: algo(comm, make_vec(comm.rank, n)), nranks)
    ref = np.sum([make_vec(r, n) for r in range(nranks)], axis=0)
    return out, ref


class TestPartitionBounds:
    def test_even_split(self):
        assert list(partition_bounds(8, 4)) == [0, 2, 4, 6, 8]

    def test_uneven_split_balanced(self):
        b = partition_bounds(10, 3)
        sizes = np.diff(b)
        assert b[0] == 0 and b[-1] == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        b = partition_bounds(2, 4)
        assert b[-1] == 2
        assert np.all(np.diff(b) >= 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_bounds(10, 0)
        with pytest.raises(ValueError):
            partition_bounds(-1, 2)


@pytest.mark.parametrize("name,algo", ALGOS.items())
class TestDenseAllreduce:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_power_of_two(self, name, algo, nranks):
        out, ref = run_allreduce(algo, nranks, 256)
        for r in range(nranks):
            assert np.allclose(out[r], ref, atol=1e-3), f"{name} wrong at rank {r}"

    @pytest.mark.parametrize("nranks", [3, 5, 6, 7])
    def test_non_power_of_two(self, name, algo, nranks):
        out, ref = run_allreduce(algo, nranks, 128)
        for r in range(nranks):
            assert np.allclose(out[r], ref, atol=1e-3)

    def test_odd_vector_length(self, name, algo):
        out, ref = run_allreduce(algo, 4, 203)
        for r in range(4):
            assert np.allclose(out[r], ref, atol=1e-3)

    def test_short_vector(self, name, algo):
        out, ref = run_allreduce(algo, 4, 5)
        for r in range(4):
            assert np.allclose(out[r], ref, atol=1e-4)

    def test_input_not_mutated(self, name, algo):
        vec_store = {}

        def prog(comm):
            v = make_vec(comm.rank, 64)
            vec_store[comm.rank] = v.copy()
            algo(comm, v)
            return np.array_equal(v, vec_store[comm.rank])

        out = run_ranks(prog, 4)
        assert all(out.results)

    def test_float64(self, name, algo):
        def prog(comm):
            v = np.random.default_rng(comm.rank).standard_normal(100)
            return algo(comm, v)

        out = run_ranks(prog, 4)
        ref = np.sum([np.random.default_rng(r).standard_normal(100) for r in range(4)], axis=0)
        assert np.allclose(out[0], ref, atol=1e-10)


class TestByteVolumes:
    def test_ring_moves_fewer_bytes_than_rec_dbl(self):
        """Bandwidth optimality: ring ~ 2N vs rec-dbl ~ N log2 P per rank."""
        n, P = 8192, 8
        out_ring, _ = run_allreduce(allreduce_ring, P, n)
        out_rd, _ = run_allreduce(allreduce_recursive_doubling, P, n)
        assert out_ring.trace.total_bytes_sent < out_rd.trace.total_bytes_sent

    def test_rabenseifner_matches_ring_bandwidth(self):
        n, P = 8192, 8
        out_ring, _ = run_allreduce(allreduce_ring, P, n)
        out_rab, _ = run_allreduce(allreduce_rabenseifner, P, n)
        ratio = out_rab.trace.total_bytes_sent / out_ring.trace.total_bytes_sent
        assert 0.9 < ratio < 1.1


class TestApi:
    def test_dense_allreduce_dispatch(self):
        def prog(comm):
            return dense_allreduce(comm, make_vec(comm.rank, 64), algorithm="dense_ring")

        out = run_ranks(prog, 4)
        ref = np.sum([make_vec(r, 64) for r in range(4)], axis=0)
        assert np.allclose(out[0], ref, atol=1e-4)

    def test_unknown_algorithm_rejected(self):
        from repro.runtime import RankError

        def prog(comm):
            return dense_allreduce(comm, make_vec(comm.rank, 8), algorithm="nope")

        with pytest.raises(RankError):
            run_ranks(prog, 2)


@settings(max_examples=15, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=9),
    n=st.integers(min_value=1, max_value=300),
    algo_name=st.sampled_from(sorted(ALGOS)),
)
def test_property_dense_allreduce_correct(nranks, n, algo_name):
    """Any (P, N, algorithm) combination computes the exact sum."""
    algo = ALGOS[algo_name]
    out, ref = run_allreduce(algo, nranks, n)
    for r in range(nranks):
        assert np.allclose(out[r], ref, atol=1e-3)
