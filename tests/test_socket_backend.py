"""Socket backend internals: rendezvous, TCP framing, failure handling.

The generic point-to-point/collective semantics are asserted for every
backend by the equivalence layer (``test_backend_equivalence.py``,
``test_cross_backend_property.py``, ``test_wire_roundtrip.py``); this
file covers what only exists on the TCP transport — the rendezvous
protocol and its timeout paths, the mesh handshake, oversized frames
streaming through TCP send windows, EOF-as-peer-death semantics, and the
multi-host ``serve-rank`` entry point.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.collectives import sparse_allreduce, ssar_recursive_double
from repro.runtime import RankError, RendezvousTimeoutError, Trace, run_ranks, serve_rank
from repro.runtime.socket_backend import (
    SocketBackend,
    _bind_listener,
    _connect_retry,
    _rendezvous_client,
    _resolve_program,
    _serve_rendezvous,
    demo_program,
)
from repro.streams import SparseStream

from conftest import make_rank_stream, reference_sum

BACKEND = "socket"


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestRendezvous:
    def test_full_world_gets_identical_address_map(self):
        nranks = 3
        listener = _bind_listener("127.0.0.1", 0, nranks)
        addr = ("127.0.0.1", listener.getsockname()[1])
        server = threading.Thread(
            target=_serve_rendezvous, args=(listener, nranks, 10.0), daemon=True
        )
        server.start()
        maps = {}

        def join(rank):
            maps[rank] = _rendezvous_client(
                addr, rank, nranks, ("127.0.0.1", 40000 + rank), timeout=10.0
            )

        threads = [threading.Thread(target=join, args=(r,)) for r in range(nranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
        server.join(timeout=5.0)
        assert maps[0] == maps[1] == maps[2]
        assert maps[0] == [("127.0.0.1", 40000 + r) for r in range(nranks)]

    def test_client_times_out_when_nobody_listens(self):
        """Connect retries against a dead address end in the typed error."""
        dead = ("127.0.0.1", _free_port())  # bound-then-released: nobody there
        t0 = time.monotonic()
        with pytest.raises(RendezvousTimeoutError, match="could not reach"):
            _rendezvous_client(dead, 0, 2, ("127.0.0.1", 1), timeout=0.5)
        assert time.monotonic() - t0 < 10.0

    def test_client_times_out_when_world_incomplete(self):
        """Registered but the world never fills: the reply never comes."""
        nranks = 2
        listener = _bind_listener("127.0.0.1", 0, nranks)
        addr = ("127.0.0.1", listener.getsockname()[1])
        server = threading.Thread(
            target=_serve_rendezvous, args=(listener, nranks, 0.6), daemon=True
        )
        server.start()
        # only one of the two ranks ever registers
        with pytest.raises(RendezvousTimeoutError, match="never fully"):
            _rendezvous_client(addr, 0, nranks, ("127.0.0.1", 1), timeout=0.8)
        server.join(timeout=5.0)

    def test_server_survives_garbage_client(self):
        """A stray non-protocol connection must not poison the world."""
        nranks = 1
        listener = _bind_listener("127.0.0.1", 0, nranks)
        addr = ("127.0.0.1", listener.getsockname()[1])
        server = threading.Thread(
            target=_serve_rendezvous, args=(listener, nranks, 10.0), daemon=True
        )
        server.start()
        stray = socket.create_connection(addr, timeout=5.0)
        stray.sendall(b"\xff" * 64)
        stray.close()
        out = _rendezvous_client(addr, 0, nranks, ("127.0.0.1", 7), timeout=10.0)
        assert out == [("127.0.0.1", 7)]
        server.join(timeout=5.0)

    def test_server_survives_silent_client(self):
        """A stray connection that sends *nothing* holds the serial accept
        loop only for the bounded handshake timeout, not the full deadline
        — real ranks queued behind it still get serviced."""
        nranks = 1
        listener = _bind_listener("127.0.0.1", 0, nranks)
        addr = ("127.0.0.1", listener.getsockname()[1])
        server = threading.Thread(
            target=_serve_rendezvous, args=(listener, nranks, 30.0), daemon=True
        )
        server.start()
        silent = socket.create_connection(addr, timeout=5.0)  # never sends
        try:
            t0 = time.monotonic()
            out = _rendezvous_client(addr, 0, nranks, ("127.0.0.1", 7), timeout=20.0)
            assert out == [("127.0.0.1", 7)]
            assert time.monotonic() - t0 < 10.0  # stray cost ~ the handshake cap
        finally:
            silent.close()
        server.join(timeout=5.0)

    def test_connect_retry_waits_for_late_listener(self):
        """Peers may come up in any order: connect retries until the deadline."""
        port = _free_port()
        result = {}

        def late_bind():
            time.sleep(0.3)
            listener = _bind_listener("127.0.0.1", port, 1)
            conn, _ = listener.accept()
            result["accepted"] = True
            conn.close()
            listener.close()

        t = threading.Thread(target=late_bind, daemon=True)
        t.start()
        sock = _connect_retry(("127.0.0.1", port), time.monotonic() + 10.0, "late peer")
        sock.close()
        t.join(timeout=5.0)
        assert result.get("accepted")


class TestSocketFailurePaths:
    def test_rank_error_mid_allreduce_aborts_blocked_peers(self):
        """A rank raising inside a collective unblocks everyone via EOF."""
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom mid-collective")
            return ssar_recursive_double(comm, make_rank_stream(2048, 64, comm.rank))

        t0 = time.monotonic()
        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 4, backend=BACKEND, timeout=60.0)
        assert exc_info.value.rank == 2
        assert isinstance(exc_info.value.original, ValueError)
        assert time.monotonic() - t0 < 30.0

    def test_hard_death_mid_allreduce_surfaces_as_eof(self):
        """os._exit closes the dying rank's sockets: peers see EOF with no
        FIN, abort, and the parent reports the dead rank."""
        import os as _os

        def prog(comm):
            if comm.rank == 1:
                _os._exit(3)
            return ssar_recursive_double(comm, make_rank_stream(2048, 64, comm.rank))

        with pytest.raises(RankError, match="process died"):
            run_ranks(prog, 3, backend=BACKEND, timeout=60.0)

    def test_timeout_detects_deadlock(self):
        def prog(comm):
            comm.recv(1 - comm.rank)  # mutual recv: classic deadlock

        with pytest.raises(TimeoutError):
            run_ranks(prog, 2, backend=BACKEND, timeout=2.0)

    def test_negative_tags_rejected(self):
        """Negative tags are transport-internal (FIN) on this backend too."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(b"x", 1, tag=-1)
            else:
                comm.recv(0, tag=-1)

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 2, backend=BACKEND)
        assert "non-negative" in str(exc_info.value.original)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_ranks(lambda c: None, 0, backend=BACKEND)

    def test_setup_timeout_is_bounded_by_run_timeout(self):
        """A failed world assembly must never outlive the run watchdog."""
        backend = SocketBackend(rendezvous_timeout=123.0)
        assert backend._setup_timeout(None) == 123.0
        assert backend._setup_timeout(300.0) == 123.0
        assert backend._setup_timeout(2.0) == 2.0


class TestOversizedFrames:
    def test_multi_megabyte_frame_chunks_through_tcp(self):
        """A frame far larger than any socket buffer streams through the
        sendall/recv_into loops intact (the TCP analog of the shmem
        oversize-chunking path)."""
        def prog(comm):
            peer = 1 - comm.rank
            big = np.arange(1 << 21, dtype=np.float64) + comm.rank  # 16 MB
            got = comm.sendrecv(big, peer, tag=3)
            return float(got[0]), float(got.sum())

        out = run_ranks(prog, 2, backend=BACKEND, timeout=120.0)
        n = 1 << 21
        base = float(np.arange(n, dtype=np.float64).sum())
        assert out[0] == (1.0, base + n)  # rank 0 received rank 1's vector
        assert out[1] == (0.0, base)

    def test_large_sparse_stream_round_trips(self):
        def prog(comm):
            if comm.rank == 0:
                gen = np.random.default_rng(5)
                s = SparseStream.random_uniform(1 << 22, nnz=200_000, rng=gen)
                comm.send(s, 1, tag=1)
                return float(s.values.sum())
            got = comm.recv(0, tag=1)
            return float(got.values.sum())

        out = run_ranks(prog, 2, backend=BACKEND, timeout=120.0)
        assert out[0] == out[1]

    def test_late_large_send_to_finished_rank_completes(self):
        """Buffered-send contract: a multi-MB send to a rank whose program
        already returned must still complete (the finished rank's pumps
        keep draining until every peer FINs)."""
        def prog(comm):
            if comm.rank == 0:
                return "done-early"  # exits immediately, never receives
            time.sleep(0.3)  # let rank 0 finish first
            big = np.zeros(1 << 21, dtype=np.float64)  # 16 MB >> TCP buffers
            comm.send(big, 0, tag=5)
            return "sent"

        out = run_ranks(prog, 2, backend=BACKEND, timeout=60.0)
        assert out.results == ["done-early", "sent"]


class TestSocketSemantics:
    def test_allreduce_matches_reference(self):
        def prog(comm):
            return sparse_allreduce(
                comm, make_rank_stream(4096, 80, comm.rank), algorithm="ssar_rec_dbl"
            )

        out = run_ranks(prog, 4, backend=BACKEND)
        ref = reference_sum(4096, 80, 4)
        for r in range(4):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)

    def test_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(50)]

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == list(range(50))

    def test_cross_process_isolation_is_physical(self):
        def prog(comm):
            arr = np.zeros(4)
            if comm.rank == 0:
                comm.send(arr, 1)
                comm.recv(1, tag=9)  # sync
                return float(arr[0])
            got = comm.recv(0)
            got[0] = 99.0
            comm.send(0, 0, tag=9)
            return None

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[0] == 0.0

    def test_accumulating_trace_rebases_seqs(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)
            else:
                comm.recv(0, tag=4)

        trace = Trace(2)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        sends = [e for e in trace.events(0) if e.op == "send"]
        assert [e.seq for e in sends] == [0, 1]

    def test_world_metadata(self):
        out = run_ranks(lambda c: c.rank, 3, backend=BACKEND)
        assert out.world.size == 3
        assert len(out.world.pids) == 3
        assert out.world.rendezvous[0] == "127.0.0.1"


class TestServeRank:
    """The multi-host entry point, exercised over real TCP on loopback."""

    def _assemble(self, nranks, program=None):
        port = _free_port()
        results, errors = {}, {}

        def join(rank):
            try:
                results[rank] = serve_rank(
                    ("127.0.0.1", port), rank, nranks,
                    program=program, rendezvous_timeout=30.0,
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced by the test
                errors[rank] = exc

        threads = [threading.Thread(target=join, args=(r,)) for r in range(nranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, f"serve_rank ranks failed: {errors}"
        return results

    def test_demo_program_agrees_across_ranks(self):
        results = self._assemble(3)
        checksums = {r: v["checksum"] for r, v in results.items()}
        assert len(set(checksums.values())) == 1
        assert all(results[r]["size"] == 3 for r in range(3))

    def test_custom_program_by_callable(self):
        def program(comm):
            return comm.bcast(f"from-{comm.rank}", root=1)

        results = self._assemble(2, program=program)
        assert results == {0: "from-1", 1: "from-1"}

    def test_matches_run_ranks_bit_identically(self):
        """serve-rank worlds compute the same bits as the launcher path."""
        results = self._assemble(2)
        ref = run_ranks(demo_program, 2, backend=BACKEND)
        assert results[0]["checksum"] == ref[0]["checksum"]
        assert results[0]["bytes_sent"] == ref[0]["bytes_sent"]

    def test_topology_exposed_from_rendezvous_map(self, capfd):
        """The (rank, host) column of the address map becomes comm.topology
        instead of being discarded after mesh assembly, and verbose mode
        surfaces the grouping in the logs."""
        port = _free_port()
        results, errors = {}, {}

        def program(comm):
            return (comm.topology.hosts, comm.topology.nnodes)

        def join(rank):
            try:
                results[rank] = serve_rank(
                    ("127.0.0.1", port), rank, 2,
                    program=program, rendezvous_timeout=30.0, verbose=True,
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced by the test
                errors[rank] = exc

        threads = [threading.Thread(target=join, args=(r,)) for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, f"serve_rank ranks failed: {errors}"
        assert results[0] == (("127.0.0.1", "127.0.0.1"), 1)
        assert results[0] == results[1]
        logs = capfd.readouterr().err
        assert "world assembled" in logs and "127.0.0.1=[0, 1]" in logs

    def test_hier_allreduce_on_simulated_hosts(self):
        """2 simulated hosts x 2 ranks over TCP loopback: the hierarchical
        schedule runs on the socket transport and matches the reference."""
        from repro.runtime import Topology, bytes_by_tier

        def prog(comm):
            return sparse_allreduce(
                comm, make_rank_stream(2048, 64, comm.rank), algorithm="ssar_hier"
            ).to_dense()

        topo = Topology.from_spec("2x2")
        out = run_ranks(prog, 4, backend=BACKEND, topology=topo)
        ref = reference_sum(2048, 64, 4)
        for r in range(4):
            assert np.allclose(out[r], ref, atol=1e-4)
        intra, inter = bytes_by_tier(out.trace, topo)
        assert 0 < inter < intra + inter

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            serve_rank(("127.0.0.1", 1), 2, 2)

    def test_program_spec_resolution(self):
        fn = _resolve_program("repro.runtime.socket_backend:demo_program")
        assert fn is demo_program
        assert _resolve_program(None) is demo_program
        with pytest.raises(ValueError, match="module:function"):
            _resolve_program("no-colon")
        with pytest.raises(ValueError, match="non-callable"):
            _resolve_program("repro.runtime.socket_backend:_MAGIC")
