"""Public API surface and cross-cutting edge cases.

Guards the stability of the documented import surface (README examples
must keep working), exercises float16 streams end to end, and covers a
few seams not owned by any single module's test file.
"""

import numpy as np
import pytest

import repro
from repro.runtime import run_ranks
from repro.streams import SparseStream


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_symbols_importable(self):
        # exactly the names the README quickstart uses
        for name in (
            "SparseStream", "run_ranks", "sparse_allreduce", "replay", "ARIES",
            "TopKSGDConfig", "quantized_topk_sgd", "dense_sgd", "dense_allreduce",
            "QSGDQuantizer", "ErrorFeedback", "Trace", "NetworkModel",
        ):
            assert hasattr(repro, name), name

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.collectives
        import repro.core
        import repro.costmodel
        import repro.frameworks
        import repro.mlopt
        import repro.netsim
        import repro.nn
        import repro.quant
        import repro.runtime
        import repro.streams

        for mod in (
            repro.analysis, repro.collectives, repro.core, repro.costmodel,
            repro.frameworks, repro.mlopt, repro.netsim, repro.nn,
            repro.quant, repro.runtime, repro.streams,
        ):
            for name in mod.__all__:
                assert getattr(mod, name, None) is not None, f"{mod.__name__}.{name}"

    def test_quickstart_snippet_runs(self):
        """The README quickstart, verbatim in miniature."""
        def program(comm):
            gen = np.random.default_rng(comm.rank)
            stream = SparseStream.random_uniform(1 << 12, nnz=50, rng=gen)
            return repro.sparse_allreduce(comm, stream, algorithm="auto")

        out = run_ranks(program, 4)
        timing = repro.replay(out.trace, repro.ARIES)
        assert timing.makespan > 0
        assert out.trace.summary()["messages"] > 0


class TestFloat16Streams:
    def test_fp16_roundtrip(self, rng):
        s = SparseStream.random_uniform(256, nnz=20, rng=rng, value_dtype=np.float16)
        assert s.value_dtype == np.dtype(np.float16)
        assert s.to_dense().dtype == np.float16

    def test_fp16_delta_is_one_third(self):
        s = SparseStream.zeros(900, value_dtype=np.float16)
        assert s.delta == 300  # N * 2 / 6

    def test_fp16_wire_bytes(self):
        s = SparseStream(1000, indices=[1, 2], values=[1.0, 2.0], value_dtype=np.float16)
        from repro.config import STREAM_HEADER_BYTES

        assert s.nbytes_payload == STREAM_HEADER_BYTES + 2 * (4 + 2)

    @pytest.mark.parametrize("algorithm", ["ssar_rec_dbl", "ssar_split_ag"])
    def test_fp16_collectives(self, algorithm):
        P, dim, nnz = 4, 1024, 30

        def make(rank):
            gen = np.random.default_rng(600 + rank)
            return SparseStream.random_uniform(dim, nnz=nnz, rng=gen, value_dtype=np.float16)

        def prog(comm):
            return repro.sparse_allreduce(comm, make(comm.rank), algorithm=algorithm)

        out = run_ranks(prog, P)
        ref = np.sum([make(r).to_dense().astype(np.float64) for r in range(P)], axis=0)
        # fp16 accumulation tolerance
        assert np.allclose(out[0].to_dense().astype(np.float64), ref, atol=2e-2)

    def test_fp16_halves_traffic_vs_fp32(self):
        P, dim, nnz = 2, 1 << 16, 2000

        def run_with(dtype):
            def prog(comm):
                gen = np.random.default_rng(comm.rank)
                s = SparseStream.random_uniform(dim, nnz=nnz, rng=gen, value_dtype=dtype)
                return repro.sparse_allreduce(comm, s, algorithm="ssar_rec_dbl")

            return run_ranks(prog, P).trace.total_bytes_sent

        fp32 = run_with(np.float32)
        fp16 = run_with(np.float16)
        # pair bytes: 4+4 -> 4+2, i.e. 25% saving
        assert fp16 < fp32
        assert fp16 / fp32 == pytest.approx(6 / 8, rel=0.05)


class TestCrossCuttingEdges:
    def test_dimension_zero_stream(self):
        s = SparseStream.zeros(0)
        assert s.nnz == 0
        assert s.to_dense().shape == (0,)

    def test_single_rank_everything(self):
        """P=1 degenerate case across the API surface."""
        def prog(comm):
            gen = np.random.default_rng(0)
            s = SparseStream.random_uniform(128, nnz=8, rng=gen)
            a = repro.sparse_allreduce(comm, s, "ssar_rec_dbl")
            b = repro.sparse_allreduce(comm, s, "dsar_split_ag")
            c = repro.dense_allreduce(comm, s.to_dense())
            comm.barrier()
            return a, b, c

        out = run_ranks(prog, 1)
        a, b, c = out[0]
        assert np.allclose(a.to_dense(), c, atol=1e-6)
        assert np.allclose(b.to_dense(), c, atol=1e-6)

    def test_trace_shared_across_phases(self):
        """A user-provided trace accumulates across multiple run_ranks."""
        from repro.runtime import Trace

        trace = Trace(2)

        def prog(comm):
            comm.send(1, 1 - comm.rank) if comm.rank == 0 else comm.recv(0)

        run_ranks(prog, 2, trace=trace)
        first = trace.total_messages
        run_ranks(prog, 2, trace=trace)
        assert trace.total_messages == 2 * first

    def test_choose_algorithm_matches_executed_path(self):
        """The selector's choice must execute without error for shapes
        across the decision boundaries."""
        for dim, nnz in [(1 << 16, 10), (1 << 20, 40_000), (4096, 1500)]:
            algo = repro.choose_algorithm(dim, 4, nnz)

            def prog(comm, dim=dim, nnz=nnz, algo=algo):
                gen = np.random.default_rng(comm.rank)
                s = SparseStream.random_uniform(dim, nnz=nnz, rng=gen)
                return repro.sparse_allreduce(comm, s, algorithm=algo)

            out = run_ranks(prog, 4)
            assert out[0].dimension == dim
