"""Tests for the sweep tooling and the ``python -m repro`` CLI."""

import numpy as np
import pytest

from repro.netsim import ARIES
from repro.tools import (
    ALGORITHM_SET,
    SweepPoint,
    build_parser,
    main,
    sweep_densities,
    sweep_node_counts,
)


class TestSweeps:
    def test_node_sweep_structure(self):
        points = sweep_node_counts(
            [2, 4], dimension=4096, density=0.01,
            algorithms=["ssar_rec_dbl", "dense_ring"],
        )
        assert len(points) == 4
        assert {p.algorithm for p in points} == {"ssar_rec_dbl", "dense_ring"}
        assert {p.nranks for p in points} == {2, 4}
        assert all(p.time_s > 0 and p.bytes_sent > 0 for p in points)

    def test_density_sweep_structure(self):
        points = sweep_densities(
            [0.01, 0.1], dimension=4096, nranks=2, algorithms=["ssar_rec_dbl"]
        )
        assert len(points) == 2
        assert points[0].nnz < points[1].nnz
        assert points[0].density == pytest.approx(0.01, rel=0.05)

    def test_sparse_wins_in_sweep(self):
        points = sweep_node_counts(
            [4], dimension=1 << 16, density=0.005,
            algorithms=["ssar_rec_dbl", "dense_rabenseifner"], network="aries",
        )
        by_algo = {p.algorithm: p for p in points}
        assert by_algo["ssar_rec_dbl"].time_s < by_algo["dense_rabenseifner"].time_s

    def test_network_model_object_accepted(self):
        points = sweep_node_counts(
            [2], dimension=1024, density=0.01,
            algorithms=["ssar_rec_dbl"], network=ARIES.with_(alpha=1e-3),
        )
        assert points[0].time_s >= 1e-3  # dominated by the huge alpha

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            sweep_node_counts([2], dimension=64, algorithms=["nope"])

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            sweep_node_counts([2], dimension=64, network="token-ring")

    def test_bad_density_rejected(self):
        with pytest.raises(ValueError, match="density"):
            sweep_densities([1.5], dimension=64)

    def test_deterministic_given_seed(self):
        kwargs = dict(dimension=2048, density=0.01, algorithms=["ssar_rec_dbl"], seed=7)
        a = sweep_node_counts([2], **kwargs)
        b = sweep_node_counts([2], **kwargs)
        assert a[0].time_s == b[0].time_s
        assert a[0].bytes_sent == b[0].bytes_sent

    def test_algorithm_set_complete(self):
        assert set(ALGORITHM_SET) == {
            "ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "ssar_hier",
            "dsar_split_ag", "dsar_hier",
            "dense_rabenseifner", "dense_ring", "dense_rec_dbl",
        }

    def test_tiered_network_spec_accepted(self):
        """A tiered spec resolves and the tiered replay rewards hierarchy:
        with simulated hosts the hier row beats flat recursive doubling."""
        points = sweep_node_counts(
            [8], dimension=1 << 14, density=0.02,
            algorithms=["ssar_hier", "ssar_rec_dbl"], network="tiered:gige",
            ranks_per_node=4,
        )
        by_algo = {p.algorithm: p for p in points}
        assert by_algo["ssar_hier"].time_s < by_algo["ssar_rec_dbl"].time_s

    def test_tiered_preset_name_accepted(self):
        points = sweep_node_counts(
            [2], dimension=1024, density=0.01,
            algorithms=["ssar_rec_dbl"], network="tiered_gige",
        )
        assert points[0].time_s > 0

    def test_dsar_hier_sweep_row(self):
        points = sweep_densities(
            [0.2], dimension=2048, nranks=4, algorithms=["dsar_hier"],
            network="tiered:ib_fdr", ranks_per_node=2,
        )
        assert points[0].bytes_sent > 0 and points[0].time_s > 0

    def test_ranks_per_node_enables_hier_sweep(self):
        points = sweep_node_counts(
            [4], dimension=2048, density=0.01,
            algorithms=["ssar_hier", "ssar_rec_dbl"], ranks_per_node=2,
        )
        by_algo = {p.algorithm: p for p in points}
        assert by_algo["ssar_hier"].bytes_sent > 0
        # fewer messages than flat recursive doubling on a 2x2 world
        assert by_algo["ssar_hier"].messages <= by_algo["ssar_rec_dbl"].messages


class TestCLI:
    def test_presets_command(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "aries" in out and "gige" in out

    def test_expected_k_command(self, capsys):
        assert main(["expected-k", "--nodes", "2", "8"]) == 0
        out = capsys.readouterr().out
        assert "k \\ P" in out

    def test_expected_k_skips_oversized_k(self, capsys):
        assert main(["expected-k", "--dimension", "8", "--k-values", "4", "16"]) == 0
        err = capsys.readouterr().err
        assert "skipping" in err

    def test_sweep_nodes_command(self, capsys):
        code = main([
            "sweep-nodes", "--dimension", "4096", "--nodes", "2",
            "--algorithms", "ssar_rec_dbl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ssar_rec_dbl" in out
        assert "nranks=2" in out

    def test_sweep_density_command(self, capsys):
        code = main([
            "sweep-density", "--dimension", "4096", "--densities", "0.01",
            "--nranks", "2", "--algorithms", "dense_ring",
        ])
        assert code == 0
        assert "dense_ring" in capsys.readouterr().out

    def test_parser_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep-nodes", "--algorithms", "bogus"])

    def test_sweep_rejects_unknown_network(self, capsys):
        rc = main(["sweep-nodes", "--dimension", "64", "--nodes", "2",
                   "--network", "token-ring"])
        assert rc == 2
        assert "network" in capsys.readouterr().err

    def test_sweep_accepts_tiered_network_spec(self, capsys):
        rc = main([
            "sweep-nodes", "--dimension", "1024", "--nodes", "2",
            "--network", "tiered:gige", "--algorithms", "ssar_rec_dbl",
        ])
        assert rc == 0
        assert "ssar_rec_dbl" in capsys.readouterr().out

    def test_presets_include_tiered(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "tiered_gige" in out and "shm" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBenchKernelsCommand:
    def test_quick_bench_writes_valid_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "bench.json"
        rc = main([
            "bench-kernels", "--quick", "--out", str(out),
            "--dimension", "4096", "--nranks", "2",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == 5 and doc["quick"] is True
        assert doc["params"]["dimension"] == 4096
        # every layer present, with sane positive timings
        for name, stats in doc["microkernels"].items():
            if name == "params":
                continue
            assert stats["best_s"] > 0, name
        assert set(doc["transport_roundtrip"]) == {"process", "shmem", "socket"}
        assert set(doc["allreduce"]) == {"thread", "process", "shmem", "socket"}
        for per_algo in doc["allreduce"].values():
            assert "ssar_hier" in per_algo
            for per_density in per_algo.values():
                for stats in per_density.values():
                    assert stats["best_s"] > 0
                    # schema 5: the CostModel prediction rides next to
                    # every measured row
                    assert stats["predicted_s"] > 0
        check = doc["allreduce_ordering_check"]
        assert check["ok"] and check["predicted_network"] == "tiered_ib_fdr"
        # the tiered byte-accounting layer covers every algorithm and the
        # inter-node column never exceeds the total
        hier = doc["hierarchy"]
        assert set(hier["per_algorithm"]) == set(doc["params"]["algorithms"])
        assert "dsar_hier" in hier["per_algorithm"]
        assert hier["replay_flat_preset"] == "ib_fdr"
        assert hier["replay_tiered_preset"] == "tiered_ib_fdr"
        for row in hier["per_algorithm"].values():
            assert 0 <= row["inter_node_bytes"] <= row["total_bytes"]
            assert row["intra_node_bytes"] + row["inter_node_bytes"] == row["total_bytes"]
            # both replayed makespans present and sane
            assert row["replay_flat_s"] > 0
            assert row["replay_tiered_s"] > 0
        # schema >= 4: the overlap layer measures the chunked non-blocking
        # hierarchy on every backend and predicts the pipelined makespan
        overlap = doc["overlap"]
        assert overlap["chunks"] >= 2
        assert set(overlap["per_backend"]) == {"thread", "process", "shmem", "socket"}
        for metrics in overlap["per_backend"].values():
            for key in ("compute_s", "comm_s", "blocking_s", "overlapped_s"):
                assert metrics[key]["median_s"] > 0, key
            assert "overlap_fraction" in metrics
        predicted = overlap["predicted"]
        assert 0 < predicted["pipelined_makespan_s"] <= predicted["blocking_makespan_s"]
        assert any(k.startswith("e2e_") for k in doc["headline"])
        assert "wrote" in capsys.readouterr().out

    def test_bench_parser_backend_choices(self):
        parser = build_parser()
        args = parser.parse_args(
            ["bench-kernels", "--quick", "--backends", "thread", "shmem"]
        )
        assert args.backends == ["thread", "shmem"]
        with pytest.raises(SystemExit):
            parser.parse_args(["bench-kernels", "--backends", "mpi"])


class TestServeRankElasticFlags:
    _BASE = ["serve-rank", "--rendezvous", "h:29400", "--nranks", "2"]

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [*self._BASE, "--rank", "1", "--elastic", "--rejoin"]
        )
        assert args.elastic is True
        assert args.rejoin is True

    def test_flags_default_off(self):
        args = build_parser().parse_args([*self._BASE, "--rank", "1"])
        assert args.elastic is False
        assert args.rejoin is False

    def test_rank0_rejoin_rejected(self, capsys):
        rc = main([*self._BASE, "--rank", "0", "--rejoin"])
        assert rc == 2
        assert "--rejoin" in capsys.readouterr().err

    def test_two_rank_elastic_world_through_main(self, capsys):
        # end-to-end: the CLI path wires --elastic through to serve_rank
        # (rank 0 keeps the rendezvous daemon alive until its program ends)
        import socket as socketlib
        import threading

        with socketlib.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        codes: dict[int, int] = {}

        def rank_main(rank: int) -> None:
            codes[rank] = main([
                "serve-rank", "--rendezvous", f"127.0.0.1:{port}",
                "--rank", str(rank), "--nranks", "2",
                *(["--elastic"] if rank == 0 else []),
            ])

        threads = [
            threading.Thread(target=rank_main, args=(r,), daemon=True)
            for r in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
            assert not t.is_alive()
        assert codes == {0: 0, 1: 0}
        assert "finished" in capsys.readouterr().out
