"""Tests for the automatic algorithm selector (§5.3 switching heuristics)."""

import pytest

from repro.collectives import (
    ALGORITHMS,
    RING_MIN_RANKS,
    SMALL_MESSAGE_BYTES,
    SPARSE_ALGORITHMS,
    choose_algorithm,
    dense_stage_two_tier_times,
)
from repro.config import delta_threshold
from repro.netsim import GIGE, TIERED_GIGE
from repro.runtime import Topology


class TestChooseAlgorithm:
    def test_small_sparse_uses_recursive_doubling(self):
        # tiny reduced payload -> latency bound
        assert choose_algorithm(1 << 20, 8, 100) == "ssar_rec_dbl"

    def test_large_sparse_uses_split_allgather(self):
        # large but still below delta after fill-in
        n = 1 << 24
        assert choose_algorithm(n, 4, 50_000) == "ssar_split_ag"

    def test_dense_fill_in_uses_dsar(self):
        # k*P far above delta -> dynamic instance
        n = 10_000
        assert choose_algorithm(n, 64, 2_000) == "dsar_split_ag"

    def test_user_expected_k_overrides_model(self):
        n = 10_000
        # uniform model would say dense, but the user knows supports overlap
        algo = choose_algorithm(n, 64, 2_000, expected_k=2_000)
        assert algo != "dsar_split_ag"

    def test_threshold_boundary(self):
        n = 1 << 16
        delta = delta_threshold(n, 4)
        assert choose_algorithm(n, 2, 10, expected_k=delta + 1) == "dsar_split_ag"
        small = choose_algorithm(n, 2, 10, expected_k=delta - 1)
        assert small in ("ssar_rec_dbl", "ssar_split_ag")

    def test_small_message_boundary(self):
        n = 1 << 24
        pair_bytes = 8
        k_small = SMALL_MESSAGE_BYTES // pair_bytes - 1
        assert choose_algorithm(n, 2, 10, expected_k=k_small) == "ssar_rec_dbl"
        assert choose_algorithm(n, 2, 10, expected_k=k_small * 4) == "ssar_split_ag"

    def test_every_selectable_algorithm_is_runnable(self):
        """Selector audit: everything in SPARSE_ALGORITHMS has a kernel, and
        every name the selector can emit is selectable."""
        assert set(SPARSE_ALGORITHMS) == set(ALGORITHMS)

    def test_single_rank(self):
        assert choose_algorithm(1000, 1, 10) in (
            "ssar_rec_dbl",
            "ssar_split_ag",
            "dsar_split_ag",
        )

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            choose_algorithm(1000, 0, 10)

    def test_invalid_nnz(self):
        with pytest.raises(ValueError):
            choose_algorithm(1000, 4, 2000)

    def test_topology_size_mismatch_rejected(self):
        """The launcher-uniform size check also guards the selector: H/m
        from a topology of a different world would poison the two-tier
        cost comparison."""
        with pytest.raises(ValueError, match="describes 8 ranks but the world has 64"):
            choose_algorithm(10_000, 64, 2_000, topology=Topology.uniform(8, 4))

    def test_ring_requires_bandwidth_bound_instances(self):
        """ssar_ring is reachable, but only through the bandwidth-bound
        branch — moderate instances still pick the paper's algorithms."""
        for n, p, k in [(1 << 16, 2, 10), (1 << 20, 32, 5000), (4096, 64, 1000)]:
            assert choose_algorithm(n, p, k) != "ssar_ring"

    def test_ring_selected_when_bandwidth_bound_at_scale(self):
        """K large enough that even the per-rank slice is past the latency
        switch point, with enough ranks to amortize the ring's 2(P-1)a."""
        n = 1 << 26  # delta = n/2 = 2^25
        k = 1 << 23  # static-sparse (below delta), reduced 64 MB
        assert choose_algorithm(n, RING_MIN_RANKS, 10, expected_k=k) == "ssar_ring"
        # not at small scale: the split phase's (P-1)a is cheaper
        assert choose_algorithm(n, RING_MIN_RANKS - 1, 10, expected_k=k) == "ssar_split_ag"
        # not when the slice falls under the switch point
        modest = RING_MIN_RANKS * (SMALL_MESSAGE_BYTES // 8) - 1
        assert choose_algorithm(n, RING_MIN_RANKS, 10, expected_k=modest) == "ssar_split_ag"

    def test_hier_requires_hierarchical_topology(self):
        n, p, k = 1 << 20, 8, 100
        flat_choice = choose_algorithm(n, p, k)
        assert flat_choice != "ssar_hier"
        assert choose_algorithm(n, p, k, topology=Topology.flat(p)) == flat_choice
        assert (
            choose_algorithm(n, p, k, topology=Topology.uniform(p, 1)) == flat_choice
        )
        assert (
            choose_algorithm(n, p, k, topology=Topology.uniform(p, 4)) == "ssar_hier"
        )

    def test_dense_fill_in_beats_topology(self):
        """A dynamic instance goes to a DSAR dense-stage algorithm even on
        a hierarchical topology — hierarchy changes *which* DSAR, never
        whether the representation switch happens."""
        n, p, k = 10_000, 64, 2_000
        choice = choose_algorithm(n, p, k, topology=Topology.uniform(p, 8))
        assert choice in ("dsar_split_ag", "dsar_hier")
        # under the default tiered cluster model the leader-only dense
        # stage wins: only H uplinks carry dense partitions instead of P
        assert choice == "dsar_hier"

    def test_dsar_hier_needs_hierarchical_topology(self):
        """dsar_hier is reachable only with several multi-rank hosts."""
        n, p, k = 10_000, 64, 2_000
        assert choose_algorithm(n, p, k) == "dsar_split_ag"
        assert choose_algorithm(n, p, k, topology=Topology.flat(p)) == "dsar_split_ag"
        assert (
            choose_algorithm(n, p, k, topology=Topology.uniform(p, 1))
            == "dsar_split_ag"
        )

    def test_dsar_hier_not_selected_on_flat_bandwidth_bound_network(self):
        """With a genuinely flat network (equal tiers) a bandwidth-bound
        dynamic instance stays on flat DSAR — the hierarchy's extra intra
        rounds re-move the full dense vector and cannot pay for
        themselves without a fast local tier. The same shape under a
        tiered network flips to dsar_hier."""
        n, p, k = 1 << 20, 8, 120_000  # dense payload dominates latency
        topo = Topology.from_spec("2x4")
        assert choose_algorithm(n, p, k, topology=topo, network=GIGE) == "dsar_split_ag"
        assert (
            choose_algorithm(n, p, k, topology=topo, network=TIERED_GIGE)
            == "dsar_hier"
        )

    def test_two_tier_cost_comparison_shapes(self):
        """The cost helper orders flat vs hier the way the tiers demand."""
        n, p, k = 1 << 20, 8, 120_000
        topo = Topology.from_spec("2x4")
        flat_t, hier_t = dense_stage_two_tier_times(n, p, k, 4, topo, TIERED_GIGE)
        assert hier_t < flat_t  # fast intra tier: leaders-only dense stage wins
        flat_eq, hier_eq = dense_stage_two_tier_times(n, p, k, 4, topo, GIGE)
        assert hier_eq > flat_eq  # equal tiers: the extra intra rounds lose
        assert flat_t > 0 and hier_t > 0

    def test_more_ranks_pushes_toward_dsar(self):
        """Fill-in grows with P (Fig. 1): eventually the instance is dynamic."""
        n, k = 50_000, 2_500  # 5% per-node density
        algos = [choose_algorithm(n, p, k) for p in (2, 4, 8, 16, 32, 64)]
        assert algos[-1] == "dsar_split_ag"
        # once dynamic, stays dynamic
        first_dsar = algos.index("dsar_split_ag")
        assert all(a == "dsar_split_ag" for a in algos[first_dsar:])
