"""Tests for the automatic algorithm selector (§5.3 switching heuristics)."""

import pytest

from repro.collectives import SMALL_MESSAGE_BYTES, choose_algorithm
from repro.config import delta_threshold


class TestChooseAlgorithm:
    def test_small_sparse_uses_recursive_doubling(self):
        # tiny reduced payload -> latency bound
        assert choose_algorithm(1 << 20, 8, 100) == "ssar_rec_dbl"

    def test_large_sparse_uses_split_allgather(self):
        # large but still below delta after fill-in
        n = 1 << 24
        assert choose_algorithm(n, 4, 50_000) == "ssar_split_ag"

    def test_dense_fill_in_uses_dsar(self):
        # k*P far above delta -> dynamic instance
        n = 10_000
        assert choose_algorithm(n, 64, 2_000) == "dsar_split_ag"

    def test_user_expected_k_overrides_model(self):
        n = 10_000
        # uniform model would say dense, but the user knows supports overlap
        algo = choose_algorithm(n, 64, 2_000, expected_k=2_000)
        assert algo != "dsar_split_ag"

    def test_threshold_boundary(self):
        n = 1 << 16
        delta = delta_threshold(n, 4)
        assert choose_algorithm(n, 2, 10, expected_k=delta + 1) == "dsar_split_ag"
        small = choose_algorithm(n, 2, 10, expected_k=delta - 1)
        assert small in ("ssar_rec_dbl", "ssar_split_ag")

    def test_small_message_boundary(self):
        n = 1 << 24
        pair_bytes = 8
        k_small = SMALL_MESSAGE_BYTES // pair_bytes - 1
        assert choose_algorithm(n, 2, 10, expected_k=k_small) == "ssar_rec_dbl"
        assert choose_algorithm(n, 2, 10, expected_k=k_small * 4) == "ssar_split_ag"

    def test_single_rank(self):
        assert choose_algorithm(1000, 1, 10) in (
            "ssar_rec_dbl",
            "ssar_split_ag",
            "dsar_split_ag",
        )

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            choose_algorithm(1000, 0, 10)

    def test_invalid_nnz(self):
        with pytest.raises(ValueError):
            choose_algorithm(1000, 4, 2000)

    def test_never_returns_ring(self):
        """ssar_ring exists only as an explicit comparison point."""
        for n, p, k in [(1 << 16, 2, 10), (1 << 20, 32, 5000), (4096, 64, 1000)]:
            assert choose_algorithm(n, p, k) != "ssar_ring"

    def test_more_ranks_pushes_toward_dsar(self):
        """Fill-in grows with P (Fig. 1): eventually the instance is dynamic."""
        n, k = 50_000, 2_500  # 5% per-node density
        algos = [choose_algorithm(n, p, k) for p in (2, 4, 8, 16, 32, 64)]
        assert algos[-1] == "dsar_split_ag"
        # once dynamic, stays dynamic
        first_dsar = algos.index("dsar_split_ag")
        assert all(a == "dsar_split_ag" for a in algos[first_dsar:])
