"""Wire fidelity across every backend (ISSUE 2, satellite).

The §5.1 wire format must round-trip every stream variant the library
produces — float16 values, quantized streams annotated with fractional
``value_wire_bytes``, and pickle-fallback containers that *hold* streams —
identically whether the transport is in-process mailboxes (``thread``),
pipes (``process``), shared-memory rings (``shmem``) or a TCP mesh
(``socket``). Codec-level
round-trips (including the zero-copy decode) are asserted directly on
:mod:`repro.runtime.wire`; transport-level fidelity by echoing payloads
between two real ranks per backend.
"""

import numpy as np
import pytest

from repro.quant import QSGDQuantizer
from repro.runtime import run_ranks
from repro.runtime.wire import (
    decode_message,
    decode_payload,
    encode_frame_parts,
    encode_message,
    encode_payload,
    encode_payload_parts,
)
from repro.streams import SparseStream

BACKENDS = ["thread", "process", "shmem", "socket"]


def _f16_stream():
    return SparseStream(
        4096, indices=[0, 17, 400, 4095], values=[0.5, -2.0, 7.25, 1.0],
        value_dtype=np.float16,
    )


def _quantized_stream():
    s = SparseStream(2048, indices=[5, 99, 1200], values=[1.5, -3.25, 0.125])
    s.value_wire_bytes = 1.25  # Algorithm 1: low-precision values on the wire
    return s


def _container_payload():
    """A pickle-fallback container holding streams (no stream fast path)."""
    return {
        "streams": [_f16_stream(), _quantized_stream()],
        "dense": SparseStream(32, dense=np.arange(32, dtype=np.float64),
                              value_dtype=np.float64),
        "meta": ("epoch", 3, 0.125),
    }


def _assert_stream_equal(out: SparseStream, ref: SparseStream):
    assert isinstance(out, SparseStream)
    assert out.dimension == ref.dimension
    assert out.value_dtype == ref.value_dtype
    assert out.is_dense == ref.is_dense
    assert out.value_wire_bytes == ref.value_wire_bytes
    assert np.array_equal(out.to_dense(), ref.to_dense())
    if not ref.is_dense:
        assert out.indices.dtype == ref.indices.dtype
        assert np.array_equal(out.indices, ref.indices)
        assert np.array_equal(out.values, ref.values)


class TestCodecRoundTrip:
    def test_float16_stream(self):
        ref = _f16_stream()
        _assert_stream_equal(decode_payload(encode_payload(ref)), ref)

    def test_quantized_annotation_fractional_bytes(self):
        ref = _quantized_stream()
        out = decode_payload(encode_payload(ref))
        _assert_stream_equal(out, ref)
        assert out.value_wire_bytes == 1.25
        # the annotation feeds byte accounting: it must be bit-exact
        assert out.nbytes_payload == ref.nbytes_payload

    def test_container_with_streams_pickle_fallback(self):
        ref = _container_payload()
        out = decode_payload(encode_payload(ref))
        _assert_stream_equal(out["streams"][0], ref["streams"][0])
        _assert_stream_equal(out["streams"][1], ref["streams"][1])
        _assert_stream_equal(out["dense"], ref["dense"])
        assert out["meta"] == ref["meta"]

    def test_vectored_parts_match_blob_encoding(self):
        """encode_payload_parts is byte-for-byte the flat encoding."""
        for ref in (_f16_stream(), _quantized_stream(), _container_payload()):
            total, parts = encode_payload_parts(ref)
            flat = b"".join(bytes(p) for p in parts)
            assert len(flat) == total
            assert flat == bytes(encode_payload(ref))

    def test_frame_parts_match_encode_message(self):
        ref = _quantized_stream()
        total, parts = encode_frame_parts(9, 4, ref.nbytes_payload, ref)
        flat = b"".join(bytes(p) for p in parts)
        assert flat == bytes(encode_message(9, 4, ref.nbytes_payload, ref))
        assert len(flat) == total

    def test_zero_copy_decode_returns_views(self):
        ref = _f16_stream()
        blob = bytearray(encode_message(3, 0, ref.nbytes_payload, ref))
        tag, seq, nbytes, epoch, out = decode_message(blob, copy=False)
        _assert_stream_equal(out, ref)
        # views alias the frame buffer: flipping a byte in the blob must
        # show through (this is what the shmem in-place path relies on)
        assert out.values.base is not None
        before = out.values.copy()
        blob[-1] ^= 0xFF
        assert not np.array_equal(out.values, before)

    def test_copy_decode_owns_memory(self):
        ref = _f16_stream()
        blob = bytearray(encode_message(3, 0, ref.nbytes_payload, ref))
        _, _, _, _, out = decode_message(blob, copy=True)
        blob[:] = b"\x00" * len(blob)
        _assert_stream_equal(out, ref)  # untouched by clobbering the frame
        out.values[0] = 9.0  # and writable

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_empty_stream_every_dtype(self, dtype):
        ref = SparseStream.zeros(123, value_dtype=dtype)
        _assert_stream_equal(decode_payload(encode_payload(ref)), ref)


@pytest.mark.parametrize("backend", BACKENDS)
class TestTransportRoundTrip:
    """The same payloads, echoed between two real ranks per backend."""

    @staticmethod
    def _echo(make_payload):
        def prog(comm):
            if comm.rank == 0:
                comm.send(make_payload(), 1, tag=11)
                return comm.recv(1, tag=12)  # echoed back
            got = comm.recv(0, tag=11)
            comm.send(got, 0, tag=12)
            return None

        return prog

    def test_float16_stream(self, backend):
        out = run_ranks(self._echo(_f16_stream), 2, backend=backend)
        _assert_stream_equal(out[0], _f16_stream())

    def test_quantized_stream_annotation(self, backend):
        out = run_ranks(self._echo(_quantized_stream), 2, backend=backend)
        ref = _quantized_stream()
        _assert_stream_equal(out[0], ref)
        assert out[0].value_wire_bytes == 1.25
        assert out[0].nbytes_payload == ref.nbytes_payload

    def test_container_holding_streams(self, backend):
        out = run_ranks(self._echo(_container_payload), 2, backend=backend)
        ref = _container_payload()
        _assert_stream_equal(out[0]["streams"][0], ref["streams"][0])
        _assert_stream_equal(out[0]["streams"][1], ref["streams"][1])
        _assert_stream_equal(out[0]["dense"], ref["dense"])
        assert out[0]["meta"] == ref["meta"]

    def test_quantized_block_payload(self, backend):
        """QSGD blocks travel by pickle fallback and dequantize identically."""
        q = QSGDQuantizer(bits=4, bucket_size=64, seed=3)
        vec = np.linspace(-1.0, 1.0, 256, dtype=np.float32)
        block = q.quantize(vec)

        def prog(comm):
            if comm.rank == 0:
                comm.send(block, 1, tag=1)
                return None
            return q.dequantize(comm.recv(0, tag=1))

        out = run_ranks(prog, 2, backend=backend)
        assert np.array_equal(out[1], q.dequantize(block))

    def test_byte_accounting_identical(self, backend):
        """Trace byte counts are payload properties, not transport ones."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(_quantized_stream(), 1, tag=2)
            else:
                comm.recv(0, tag=2)

        out = run_ranks(prog, 2, backend=backend)
        sends = [e for e in out.trace.events(0) if e.op == "send"]
        assert sends[0].nbytes == _quantized_stream().nbytes_payload
