"""Sub-communicator semantics (``comm.split`` / ``comm.subgroup``).

The cross-backend guarantees (bit-identical collectives on every split,
all four backends) live in ``test_backend_equivalence.py`` and the
hypothesis suite; this file pins the *semantics* on the thread backend:
rank renumbering, key ordering, tag isolation, trace attribution,
nesting, and the error paths.
"""

import numpy as np
import pytest

from repro.collectives import sparse_allreduce, ssar_recursive_double
from repro.runtime import SubCommunicator, Topology, i_collective, run_ranks
from repro.runtime.trace import SEND

from conftest import make_rank_stream, reference_sum

DIM, NNZ = 1024, 40


class TestSplit:
    def test_colors_partition_and_keys_order(self):
        def prog(comm):
            # even ranks in one group; keys reverse the member order
            sub = comm.split(comm.rank % 2, key=-comm.rank)
            return (sub.rank, sub.size, sub.parent_ranks)

        out = run_ranks(prog, 4)
        assert out[0] == (1, 2, (2, 0))
        assert out[2] == (0, 2, (2, 0))
        assert out[1] == (1, 2, (3, 1))
        assert out[3] == (0, 2, (3, 1))

    def test_none_color_opts_out(self):
        def prog(comm):
            sub = comm.split(None if comm.rank == 0 else "grp", key=comm.rank)
            if comm.rank == 0:
                assert sub is None
                return None
            return (sub.rank, sub.size)

        out = run_ranks(prog, 3)
        assert out.results == [None, (0, 2), (1, 2)]

    def test_arbitrary_hashable_colors(self):
        def prog(comm):
            sub = comm.split(("team", comm.rank // 2))
            return sub.parent_ranks

        out = run_ranks(prog, 4)
        assert out[0] == (0, 1) and out[3] == (2, 3)

    def test_non_int_key_rejected(self):
        def prog(comm):
            comm.split(0, key="a")

        with pytest.raises(Exception, match="key must be an int"):
            run_ranks(prog, 2)

    def test_single_color_covers_world(self):
        def prog(comm):
            sub = comm.split(0)
            assert isinstance(sub, SubCommunicator)
            return (sub.rank, sub.size)

        out = run_ranks(prog, 3)
        assert out.results == [(0, 3), (1, 3), (2, 3)]

    def test_point_to_point_and_collectives_inside_split(self):
        def prog(comm):
            sub = comm.split(comm.rank // 2)
            if sub.rank == 0:
                sub.send(("hello", comm.rank), 1, tag=5)
                got = None
            else:
                got = sub.recv(0, tag=5)
            bc = sub.bcast(comm.rank, root=0)
            sub.barrier()
            return (got, bc)

        out = run_ranks(prog, 4)
        assert out[1] == (("hello", 0), 0)
        assert out[3] == (("hello", 2), 2)

    def test_allreduce_on_split_matches_member_reference(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            stream = make_rank_stream(DIM, NNZ, comm.rank)
            return ssar_recursive_double(sub, stream).to_dense()

        out = run_ranks(prog, 4)
        evens = sum(
            make_rank_stream(DIM, NNZ, r).to_dense() for r in (0, 2)
        )
        odds = sum(make_rank_stream(DIM, NNZ, r).to_dense() for r in (1, 3))
        assert np.allclose(out[0], evens, atol=1e-5)
        assert np.array_equal(out[0], out[2])
        assert np.allclose(out[1], odds, atol=1e-5)
        assert np.array_equal(out[1], out[3])

    def test_concurrent_splits_do_not_collide(self):
        """Row and column splits of a 2x2 grid carry disjoint tag windows."""

        def prog(comm):
            row = comm.split(comm.rank // 2)
            col = comm.split(comm.rank % 2)
            a = row.bcast(("row", comm.rank), root=0)
            b = col.bcast(("col", comm.rank), root=0)
            return (a, b)

        out = run_ranks(prog, 4)
        assert out[3] == (("row", 2), ("col", 1))

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(comm.rank // 2)  # {0,1} and {2,3}
            solo = half.split(half.rank)  # singletons
            assert solo.size == 1 and solo.rank == 0
            pair_sum = half.bcast(comm.rank, root=0)
            return (half.parent_ranks, solo.parent_ranks, pair_sum)

        out = run_ranks(prog, 4)
        assert out[3] == ((2, 3), (1,), 2)

    def test_nested_windows_never_alias(self):
        """Sequential overlapping splits and their nested splits all carry
        globally distinct tag windows (regression: a second child of the
        first split used to alias the first child of the second split)."""

        def prog(comm):
            x = comm.split(0)
            y = comm.split(0)
            children = [x.split(0), x.split(0), y.split(0), y.split(0)]
            grand = [c.split(0) for c in children]
            comms = [x, y, *children, *grand]
            windows = [c._map_tag(0) for c in comms]
            assert len(set(windows)) == len(windows), windows
            # traffic on same-numbered tags of alias-prone groups stays
            # separate: exchange on x-child#1 and y-child#0 concurrently
            a, b = children[1], children[2]
            peer = 1 - comm.rank
            ra = a.isend(("a", comm.rank), peer, tag=7)
            rb = b.isend(("b", comm.rank), peer, tag=7)
            got_b = b.recv(peer, tag=7)
            got_a = a.recv(peer, tag=7)
            ra.wait(), rb.wait()
            return (got_a, got_b)

        out = run_ranks(prog, 2)
        assert out[0] == (("a", 1), ("b", 1))
        assert out[1] == (("a", 0), ("b", 0))


class TestSubgroup:
    def test_subgroup_order_defines_ranks(self):
        def prog(comm):
            sub = comm.subgroup([2, 0])
            if sub is None:
                return None
            return (sub.rank, sub.parent_ranks)

        out = run_ranks(prog, 3)
        assert out.results == [(1, (2, 0)), None, (0, (2, 0))]

    def test_disjoint_groups_in_one_call_slot(self):
        """The host-group pattern: different ranks pass disjoint lists."""

        def prog(comm):
            mine = [0, 1] if comm.rank < 2 else [2, 3]
            sub = comm.subgroup(mine)
            return sub.bcast(comm.rank, root=0)

        out = run_ranks(prog, 4)
        assert out.results == [0, 0, 2, 2]

    def test_validation(self):
        def dup(comm):
            comm.subgroup([0, 0])

        def empty(comm):
            comm.subgroup([])

        def out_of_range(comm):
            comm.subgroup([0, 9])

        for bad, msg in ((dup, "duplicate"), (empty, "at least one"), (out_of_range, "out of range")):
            with pytest.raises(Exception, match=msg):
                run_ranks(bad, 2)

    def test_topology_restriction(self):
        def prog(comm):
            sub = comm.subgroup(comm.topology.group_of(comm.rank))
            leaders = comm.subgroup(comm.topology.leaders)
            return (
                sub.topology.hosts,
                None if leaders is None else leaders.topology.hosts,
            )

        out = run_ranks(prog, 4, topology="2x2")
        assert out[0] == (("node0", "node0"), ("node0", "node1"))
        assert out[1] == (("node0", "node0"), None)
        assert out[2] == (("node1", "node1"), ("node0", "node1"))

    def test_no_topology_means_none(self):
        out = run_ranks(lambda comm: comm.subgroup([0, 1]).topology, 2)
        assert out.results == [None, None]


class TestTraceAttribution:
    def test_events_land_on_world_ranks(self):
        """A split's traffic is attributed to real ranks, not sub-ranks."""

        def prog(comm):
            sub = comm.split(0 if comm.rank >= 2 else None)
            if sub is not None and sub.rank == 0:
                sub.send(1.0, 1, tag=3)
            elif sub is not None:
                sub.recv(0, tag=3)

        out = run_ranks(prog, 4)
        sends = [e for events in out.trace for e in events if e.op == SEND and e.tag >= (1 << 40)]
        assert len(sends) == 1
        (ev,) = sends
        assert ev.rank == 2 and ev.peer == 3  # world ranks, not (0, 1)

    def test_bytes_accounting_survives_splits(self):
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            stream = make_rank_stream(DIM, NNZ, comm.rank)
            ssar_recursive_double(sub, stream)
            return comm.trace.bytes_sent_by(comm.rank)

        thread = run_ranks(prog, 4, backend="thread")
        process = run_ranks(prog, 4, backend="process")
        assert thread.trace.total_bytes_sent == process.trace.total_bytes_sent
        assert [thread.trace.bytes_sent_by(r) for r in range(4)] == [
            process.trace.bytes_sent_by(r) for r in range(4)
        ]


class TestProxyComposition:
    def test_irecv_isend_on_split(self):
        def prog(comm):
            sub = comm.split(0)
            peer = 1 - sub.rank if sub.size == 2 else None
            req_out = sub.isend(comm.rank * 10, peer, tag=1)
            req_in = sub.irecv(peer, tag=1)
            got = req_in.wait()
            req_out.wait()
            assert req_in.test()
            return got

        out = run_ranks(prog, 2)
        assert out.results == [10, 0]

    def test_nonblocking_collective_on_split(self):
        """i_collective over a sub-communicator: tags, ranks and the trace
        buffer all compose."""

        def prog(comm):
            sub = comm.split(comm.rank % 2)
            stream = make_rank_stream(DIM, NNZ, comm.rank)
            handle = i_collective(sub, ssar_recursive_double, stream)
            return handle.wait().to_dense()

        out = run_ranks(prog, 4)
        evens = sum(make_rank_stream(DIM, NNZ, r).to_dense() for r in (0, 2))
        assert np.allclose(out[0], evens, atol=1e-5)
        assert np.array_equal(out[0], out[2])

    def test_auto_algorithm_on_split_uses_sub_topology(self):
        """sparse_allreduce(algorithm='auto') sees the restricted topology."""

        def prog(comm):
            sub = comm.subgroup(list(range(comm.size)))  # whole world, but a proxy
            assert sub.topology == Topology.uniform(4, 2)
            return sparse_allreduce(sub, make_rank_stream(DIM, NNZ, comm.rank), "auto").to_dense()

        out = run_ranks(prog, 4, topology="2x2")
        assert np.allclose(out[0], reference_sum(DIM, NNZ, 4), atol=1e-4)
