"""Tests for the on-disk dataset format and rank-sliced loading."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mlopt import (
    dataset_info,
    load_dataset,
    load_shard,
    make_sparse_classification,
    save_dataset,
)


@pytest.fixture(scope="module")
def stored_dataset(tmp_path_factory):
    ds = make_sparse_classification(120, 800, 20, seed=31)
    path = tmp_path_factory.mktemp("dataset") / "url"
    save_dataset(path, ds)
    return path, ds


class TestRoundtrip:
    def test_full_roundtrip(self, stored_dataset):
        path, ds = stored_dataset
        loaded = load_dataset(path)
        assert (loaded.X != ds.X).nnz == 0
        assert np.array_equal(loaded.y, ds.y)
        assert loaded.name == ds.name

    def test_metadata(self, stored_dataset):
        path, ds = stored_dataset
        meta = dataset_info(path)
        assert meta["n_samples"] == ds.n_samples
        assert meta["n_features"] == ds.n_features
        assert meta["format"] == "csr-v1"

    def test_bad_format_rejected(self, tmp_path):
        (tmp_path / "meta.json").write_text('{"format": "unknown"}')
        with pytest.raises(ValueError, match="format"):
            dataset_info(tmp_path)


class TestSharding:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7])
    def test_shards_cover_dataset(self, stored_dataset, nranks):
        path, ds = stored_dataset
        shards = [load_shard(path, r, nranks) for r in range(nranks)]
        assert sum(s.n_samples for s in shards) == ds.n_samples
        reassembled = sp.vstack([s.X for s in shards]).tocsr()
        assert (reassembled != ds.X).nnz == 0
        labels = np.concatenate([s.y for s in shards])
        assert np.array_equal(labels, ds.y)

    def test_shard_rows_match_partition(self, stored_dataset):
        path, ds = stored_dataset
        shard = load_shard(path, 1, 4)
        lo, hi = shard.meta["shard"]
        assert (shard.X != ds.X[lo:hi]).nnz == 0

    def test_shard_is_materialised_not_memmap(self, stored_dataset):
        """Shards must own their buffers (safe to mutate/compute on)."""
        path, _ = stored_dataset
        shard = load_shard(path, 0, 2)
        assert isinstance(shard.X.data, np.ndarray)
        assert not isinstance(shard.X.data, np.memmap)
        shard.X.data[:] = 0.0  # must not raise

    def test_out_of_range_rank(self, stored_dataset):
        path, _ = stored_dataset
        with pytest.raises(ValueError):
            load_shard(path, 4, 4)


class TestDistributedTrainingFromDisk:
    def test_sgd_from_shards_matches_in_memory(self, stored_dataset):
        """Training from disk shards == training from the in-memory split."""
        from repro.mlopt import LogisticRegression, SGDConfig, distributed_sgd
        from repro.runtime import run_ranks

        path, ds = stored_dataset
        cfg = SGDConfig(epochs=1, batch_size=20, lr=0.5, mode="sparse")

        def from_memory(comm):
            return distributed_sgd(comm, ds, LogisticRegression(ds.n_features, 1e-5), cfg)

        # the disk path exercises load_shard per rank; the driver API takes
        # the full dataset, so emulate by reassembling (the shards are
        # bit-identical, so results must agree exactly)
        def from_disk(comm):
            shards = [load_shard(path, r, comm.size) for r in range(comm.size)]
            X = sp.vstack([s.X for s in shards]).tocsr()
            y = np.concatenate([s.y for s in shards])
            rebuilt = type(ds)(X=X, y=y, name=ds.name)
            return distributed_sgd(comm, rebuilt, LogisticRegression(ds.n_features, 1e-5), cfg)

        mem = run_ranks(from_memory, 2)
        disk = run_ranks(from_disk, 2)
        assert np.allclose(mem[0].params, disk[0].params, atol=1e-12)
