"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mlopt import (
    TABLE1_SHAPES,
    make_cifar_like,
    make_dense_classification,
    make_imagenet_like,
    make_sequence_task,
    make_sparse_classification,
    make_url_like,
    make_webspam_like,
    partition_rows,
)


class TestSparseClassification:
    def test_shapes(self):
        ds = make_sparse_classification(200, 5000, 50, seed=1)
        assert ds.X.shape == (200, 5000)
        assert ds.y.shape == (200,)
        assert isinstance(ds.X, sp.csr_matrix)

    def test_labels_are_plus_minus_one(self):
        ds = make_sparse_classification(100, 1000, 20, seed=2)
        assert set(np.unique(ds.y)) <= {-1.0, 1.0}

    def test_rows_normalised(self):
        ds = make_sparse_classification(50, 1000, 30, seed=3)
        norms = np.sqrt(ds.X.multiply(ds.X).sum(axis=1)).A.ravel()
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_sparsity_near_target(self):
        ds = make_sparse_classification(200, 20_000, 100, seed=4)
        # power-law collisions lose some; must stay in the right ballpark
        assert 30 <= ds.mean_nnz_per_sample <= 110

    def test_deterministic(self):
        a = make_sparse_classification(50, 500, 10, seed=7)
        b = make_sparse_classification(50, 500, 10, seed=7)
        assert (a.X != b.X).nnz == 0
        assert np.array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = make_sparse_classification(50, 500, 10, seed=7)
        b = make_sparse_classification(50, 500, 10, seed=8)
        assert (a.X != b.X).nnz > 0

    def test_mostly_learnable(self):
        """A least-squares probe on the informative features must separate
        far better than chance (labels come from a linear ground truth)."""
        ds = make_sparse_classification(400, 2000, 40, seed=5, label_noise=0.0)
        w, *_ = sp.linalg.lsqr(ds.X, ds.y)[:1], None, None
        acc = np.mean(np.sign(ds.X @ w[0]) == ds.y)
        assert acc > 0.8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_sparse_classification(0, 100, 5)
        with pytest.raises(ValueError):
            make_sparse_classification(10, 100, 0)
        with pytest.raises(ValueError):
            make_sparse_classification(10, 100, 101)

    def test_url_like_shape(self):
        ds = make_url_like(scale=0.001, n_samples=50)
        assert ds.name == "url-like"
        assert ds.n_features >= 1000
        assert ds.n_samples == 50

    def test_webspam_like_shape(self):
        ds = make_webspam_like(scale=0.0005, n_samples=50)
        assert ds.name == "webspam-like"
        assert ds.n_samples == 50

    def test_table1_reference(self):
        assert TABLE1_SHAPES["url"][2] == 3_231_961
        assert TABLE1_SHAPES["webspam"][2] == 16_609_143


class TestDenseClassification:
    def test_shapes_and_dtypes(self):
        ds = make_dense_classification(100, 64, 5, seed=1)
        assert ds.X.shape == (100, 64)
        assert ds.X.dtype == np.float32
        assert ds.n_classes == 5
        assert ds.y.max() < 5

    def test_cifar_like_defaults(self):
        ds = make_cifar_like(n_samples=64)
        assert ds.n_features == 3072
        assert ds.n_classes == 10

    def test_imagenet_like_defaults(self):
        ds = make_imagenet_like(n_samples=32)
        assert ds.n_classes == 100

    def test_separable(self):
        ds = make_dense_classification(300, 32, 4, seed=2, class_separation=4.0)
        # nearest-centroid classification on the true blobs must beat chance
        means = np.stack([ds.X[ds.y == c].mean(axis=0) for c in range(4)])
        dists = ((ds.X[:, None, :] - means[None]) ** 2).sum(axis=2)
        acc = np.mean(np.argmin(dists, axis=1) == ds.y)
        assert acc > 0.8

    def test_invalid_classes(self):
        with pytest.raises(ValueError):
            make_dense_classification(10, 8, 1)


class TestSequenceTask:
    def test_shapes(self):
        ds = make_sequence_task(n_samples=64, seq_len=12, vocab_size=100, n_classes=5)
        assert ds.tokens.shape == (64, 12)
        assert ds.n_samples == 64
        assert ds.seq_len == 12
        assert ds.tokens.max() < 100

    def test_labels_in_range(self):
        ds = make_sequence_task(n_samples=64, n_classes=6)
        assert set(np.unique(ds.y)) <= set(range(6))

    def test_triggers_present(self):
        """Every sample contains at least one token from the trigger zone."""
        ds = make_sequence_task(n_samples=64, vocab_size=100)
        assert np.all((ds.tokens >= 50).sum(axis=1) >= 1)

    def test_deterministic(self):
        a = make_sequence_task(seed=9)
        b = make_sequence_task(seed=9)
        assert np.array_equal(a.tokens, b.tokens)


class TestPartitionRows:
    def test_cover_without_overlap(self):
        n, P = 103, 4
        covered = []
        for r in range(P):
            s = partition_rows(n, P, r)
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(n))

    def test_balanced(self):
        sizes = [partition_rows(100, 3, r).stop - partition_rows(100, 3, r).start for r in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            partition_rows(10, 2, 2)
