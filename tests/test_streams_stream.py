"""Tests for SparseStream: construction, representation, byte accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import STREAM_HEADER_BYTES
from repro.streams import SparseStream


class TestConstruction:
    def test_empty_stream(self):
        s = SparseStream.zeros(100)
        assert s.nnz == 0
        assert not s.is_dense
        assert s.density == 0.0
        assert np.array_equal(s.to_dense(), np.zeros(100, dtype=np.float32))

    def test_from_pairs(self):
        s = SparseStream(10, indices=[3, 7], values=[1.5, -2.0])
        dense = s.to_dense()
        assert dense[3] == pytest.approx(1.5)
        assert dense[7] == pytest.approx(-2.0)
        assert np.count_nonzero(dense) == 2

    def test_pairs_are_sorted_on_construction(self):
        s = SparseStream(10, indices=[7, 3, 5], values=[1.0, 2.0, 3.0])
        assert list(s.indices) == [3, 5, 7]
        assert list(s.values) == [2.0, 3.0, 1.0]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseStream(10, indices=[3, 3], values=[1.0, 2.0])

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(IndexError):
            SparseStream(10, indices=[10], values=[1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseStream(10, indices=[1, 2], values=[1.0])

    def test_indices_without_values_rejected(self):
        with pytest.raises(ValueError):
            SparseStream(10, indices=[1, 2])

    def test_dense_and_pairs_mutually_exclusive(self):
        with pytest.raises(ValueError):
            SparseStream(3, dense=np.zeros(3), indices=[0], values=[1.0])

    def test_dense_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            SparseStream(5, dense=np.zeros(4))

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            SparseStream(-1)

    def test_from_dense_extracts_nonzeros(self):
        arr = np.array([0, 1.0, 0, -2.0, 0], dtype=np.float32)
        s = SparseStream.from_dense(arr)
        assert not s.is_dense
        assert list(s.indices) == [1, 3]
        assert np.array_equal(s.to_dense(), arr)

    def test_from_dense_keep_dense(self):
        arr = np.ones(5, dtype=np.float32)
        s = SparseStream.from_dense(arr, keep_dense=True)
        assert s.is_dense
        assert np.array_equal(s.to_dense(), arr)

    def test_from_dense_zero_tol(self):
        arr = np.array([1e-9, 0.5, -1e-9], dtype=np.float32)
        s = SparseStream.from_dense(arr, zero_tol=1e-6)
        assert s.nnz == 1
        assert s.indices[0] == 1

    def test_from_dense_integer_input_uses_default_dtype(self):
        s = SparseStream.from_dense(np.array([0, 1, 2]))
        assert s.value_dtype == np.dtype(np.float32)

    def test_random_uniform_properties(self, rng):
        s = SparseStream.random_uniform(1000, nnz=50, rng=rng)
        assert s.nnz == 50
        assert len(np.unique(s.indices)) == 50
        assert np.all(np.diff(s.indices.astype(np.int64)) > 0)

    def test_random_uniform_bad_nnz(self, rng):
        with pytest.raises(ValueError):
            SparseStream.random_uniform(10, nnz=11, rng=rng)


class TestRepresentation:
    def test_densify_roundtrip(self, rng):
        s = SparseStream.random_uniform(200, nnz=20, rng=rng)
        ref = s.to_dense()
        s.densify()
        assert s.is_dense
        assert np.array_equal(s.to_dense(), ref)
        s.sparsify()
        assert not s.is_dense
        assert np.array_equal(s.to_dense(), ref)

    def test_sparsify_drops_explicit_zeros(self):
        s = SparseStream(4, dense=np.array([0.0, 1.0, 0.0, 2.0], dtype=np.float32))
        s.sparsify()
        assert s.nnz == 2

    def test_dense_stream_nnz_counts_all_slots(self):
        s = SparseStream(8, dense=np.zeros(8, dtype=np.float32))
        assert s.nnz == 8
        assert s.stored_nonzeros == 0

    def test_dense_has_no_index_accessors(self):
        s = SparseStream(4, dense=np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            _ = s.indices
        with pytest.raises(ValueError):
            _ = s.values

    def test_sparse_has_no_dense_payload(self):
        s = SparseStream.zeros(4)
        with pytest.raises(ValueError):
            _ = s.dense_payload

    def test_should_switch_to_dense(self):
        n = 100  # delta for float32 = 50
        s = SparseStream(n, indices=np.arange(30), values=np.ones(30))
        assert not s.should_switch_to_dense()
        assert not s.should_switch_to_dense(extra_nnz=20)
        assert s.should_switch_to_dense(extra_nnz=21)

    def test_dense_never_switches(self):
        s = SparseStream(10, dense=np.zeros(10, dtype=np.float32))
        assert not s.should_switch_to_dense(extra_nnz=1000)


class TestByteAccounting:
    def test_sparse_bytes(self):
        s = SparseStream(1000, indices=[1, 2, 3], values=[1.0, 2.0, 3.0])
        assert s.nbytes_payload == STREAM_HEADER_BYTES + 3 * (4 + 4)

    def test_dense_bytes(self):
        s = SparseStream(1000, dense=np.zeros(1000, dtype=np.float32))
        assert s.nbytes_payload == STREAM_HEADER_BYTES + 4000

    def test_float64_sparse_bytes(self):
        s = SparseStream(100, indices=[0], values=[1.0], value_dtype=np.float64)
        assert s.nbytes_payload == STREAM_HEADER_BYTES + (4 + 8)

    def test_delta_crossover(self):
        # at exactly delta nonzeros, sparse <= dense
        n = 1000
        s_sparse = SparseStream(n, indices=np.arange(500), values=np.ones(500))
        s_dense = SparseStream(n, dense=np.zeros(n, dtype=np.float32))
        assert s_sparse.nbytes_payload <= s_dense.nbytes_payload

    def test_value_wire_bytes_shrinks_payload(self):
        s = SparseStream(1 << 16, indices=np.arange(1024), values=np.ones(1024))
        full = s.nbytes_payload
        s.value_wire_bytes = 0.5  # 4-bit values
        assert s.nbytes_payload < full
        assert s.nbytes_payload == STREAM_HEADER_BYTES + int(np.ceil(1024 * 4.5))

    def test_comm_nbytes_protocol(self):
        s = SparseStream.zeros(10)
        assert s.comm_nbytes() == s.nbytes_payload


class TestOperations:
    def test_copy_is_deep(self, rng):
        s = SparseStream.random_uniform(100, nnz=10, rng=rng)
        c = s.copy()
        c.values[0] = 999.0
        assert s.values[0] != 999.0

    def test_copy_preserves_wire_annotation(self, rng):
        s = SparseStream.random_uniform(100, nnz=10, rng=rng)
        s.value_wire_bytes = 1.0
        assert s.copy().value_wire_bytes == 1.0

    def test_iscale(self):
        s = SparseStream(5, indices=[1], values=[2.0])
        s.iscale(3.0)
        assert s.values[0] == pytest.approx(6.0)

    def test_iscale_dense(self):
        s = SparseStream(3, dense=np.ones(3, dtype=np.float32))
        s.iscale(0.5)
        assert np.allclose(s.to_dense(), 0.5)

    def test_equality_across_representations(self, rng):
        s = SparseStream.random_uniform(50, nnz=5, rng=rng)
        d = s.copy().densify()
        assert s == d

    def test_len_is_dimension(self):
        assert len(SparseStream.zeros(42)) == 42

    def test_allclose(self, rng):
        s = SparseStream.random_uniform(50, nnz=5, rng=rng)
        assert s.allclose(s.to_dense())
        assert not s.allclose(s.to_dense() + 1.0)


@settings(max_examples=30, deadline=None)
@given(
    dim=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
def test_property_dense_roundtrip(dim, data):
    """from_dense(to_dense(s)) preserves the vector for any sparse stream."""
    nnz = data.draw(st.integers(min_value=0, max_value=dim))
    gen = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    s = SparseStream.random_uniform(dim, nnz=nnz, rng=gen)
    rebuilt = SparseStream.from_dense(s.to_dense())
    assert np.array_equal(rebuilt.to_dense(), s.to_dense())


@settings(max_examples=30, deadline=None)
@given(dim=st.integers(min_value=1, max_value=200), seed=st.integers(0, 2**31))
def test_property_bytes_consistent_with_representation(dim, seed):
    """Sparse payload is never larger than delta implies; dense is fixed."""
    gen = np.random.default_rng(seed)
    nnz = int(gen.integers(0, dim + 1))
    s = SparseStream.random_uniform(dim, nnz=nnz, rng=gen)
    sparse_bytes = s.nbytes_payload
    dense_bytes = s.copy().densify().nbytes_payload
    if nnz <= s.delta:
        assert sparse_bytes <= dense_bytes
