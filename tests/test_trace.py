"""Direct coverage for :mod:`repro.runtime.trace`.

The trace is the contract between execution and the netsim replay; these
tests pin its event accounting down at the unit level, including the exact
event inventory of one SSAR call.
"""

import pytest

from repro.collectives import ssar_recursive_double, ssar_split_allgather
from repro.runtime import COMPUTE, MARK, RECV, SEND, Trace, TraceEvent, run_ranks

from conftest import make_rank_stream


class TestTraceBasics:
    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            Trace(0)

    def test_seq_allocation_is_per_channel(self):
        t = Trace(2)
        assert t.next_seq(0, 1, 5) == 0
        assert t.next_seq(0, 1, 5) == 1
        assert t.next_seq(1, 0, 5) == 0  # direction is part of the channel
        assert t.next_seq(0, 1, 6) == 0  # so is the tag

    def test_reserve_seqs_blocks_out_a_range(self):
        t = Trace(2)
        assert t.reserve_seqs(0, 1, 3, 4) == 0
        assert t.next_seq(0, 1, 3) == 4
        assert t.reserve_seqs(0, 1, 3, 2) == 5
        assert t.reserve_seqs(0, 1, 3, 0) == 7  # zero-width reservation peeks

    def test_reserve_seqs_rejects_negative(self):
        with pytest.raises(ValueError):
            Trace(2).reserve_seqs(0, 1, 0, -1)

    def test_disabled_trace_records_nothing(self):
        t = Trace(2)
        t.enabled = False
        t.record_send(0, 1, 0, 0, 100)
        assert t.total_messages == 0

    def test_clear_resets_events_and_seqs(self):
        t = Trace(2)
        t.next_seq(0, 1, 0)
        t.record_send(0, 1, 0, 0, 10)
        t.clear()
        assert t.total_messages == 0
        assert t.next_seq(0, 1, 0) == 0

    def test_byte_accounting(self):
        t = Trace(3)
        t.record_send(0, 1, 0, 0, 100)
        t.record_send(0, 2, 0, 0, 50)
        t.record_recv(1, 0, 0, 0, 100)
        t.record_recv(2, 0, 0, 0, 50)
        t.record_compute(1, 999)
        assert t.total_bytes_sent == 150
        assert t.total_messages == 2
        assert t.bytes_sent_by(0) == 150
        assert t.bytes_received_by(1) == 100
        assert t.max_bytes_received() == 100
        assert t.summary() == {
            "ranks": 3,
            "messages": 2,
            "bytes_sent": 150,
            "max_rank_recv_bytes": 100,
        }

    def test_events_are_per_rank_and_ordered(self):
        t = Trace(2)
        t.record_mark(0, "a")
        t.record_compute(0, 5, "b")
        t.record_mark(1, "c")
        assert [e.label for e in t.events(0)] == ["a", "b"]
        assert [e.label for e in t.events(1)] == ["c"]
        assert [len(lst) for lst in t] == [2, 1]


class TestSSARTraceInventory:
    """Exact event counts of one SSAR call at P = 4 (power of two)."""

    P, DIM, NNZ = 4, 4096, 64

    def _events(self, algo):
        out = run_ranks(
            lambda comm: algo(comm, make_rank_stream(self.DIM, self.NNZ, comm.rank)), self.P
        )
        return out.trace

    def test_rec_dbl_message_count(self):
        """Recursive doubling: log2(P) exchange rounds, 2 sends per rank pair
        per round => P * log2(P) messages in total."""
        trace = self._events(ssar_recursive_double)
        assert trace.total_messages == self.P * 2  # P * log2(4)

    def test_rec_dbl_per_rank_event_shape(self):
        trace = self._events(ssar_recursive_double)
        for r in range(self.P):
            events = trace.events(r)
            sends = [e for e in events if e.op == SEND]
            recvs = [e for e in events if e.op == RECV]
            assert len(sends) == 2  # one per round
            assert len(recvs) == 2
            computes = [e for e in events if e.op == COMPUTE]
            assert len(computes) >= 2  # one summation per round
            assert all(e.nbytes > 0 for e in sends + recvs)

    def test_split_allgather_has_phase_marks(self):
        trace = self._events(ssar_split_allgather)
        labels = {e.label for e in trace.events(0) if e.op == MARK}
        assert labels  # the algorithm annotates its phases
        # every rank sends something in both the split and allgather phases
        for r in range(self.P):
            assert any(e.op == SEND for e in trace.events(r))

    def test_sends_and_recvs_pair_off_globally(self):
        trace = self._events(ssar_recursive_double)
        sends = {}
        recvs = {}
        for r in range(self.P):
            for e in trace.events(r):
                if e.op == SEND:
                    sends[(e.rank, e.peer, e.tag, e.seq)] = e.nbytes
                elif e.op == RECV:
                    recvs[(e.peer, e.rank, e.tag, e.seq)] = e.nbytes
        assert sends == recvs  # same channels, same sizes, nothing dangling

    def test_event_objects_are_frozen(self):
        ev = TraceEvent(SEND, 0, 1, 0, 0, 10)
        with pytest.raises(AttributeError):
            ev.nbytes = 20
