"""Tests for asynchronous (pipelined) gradient aggregation."""

import numpy as np
import pytest

from repro.mlopt import (
    LogisticRegression,
    SGDConfig,
    distributed_sgd,
    distributed_sgd_async,
    make_sparse_classification,
)
from repro.netsim import GIGE, replay
from repro.runtime import RankError, run_ranks


@pytest.fixture(scope="module")
def dataset():
    return make_sparse_classification(200, 2000, 20, seed=41)


def run_mode(dataset, nranks, driver, epochs=2):
    def prog(comm):
        cfg = SGDConfig(epochs=epochs, batch_size=25, lr=0.5, mode="sparse")
        return driver(comm, dataset, LogisticRegression(dataset.n_features, 1e-5), cfg)

    return run_ranks(prog, nranks)


class TestAsyncSGD:
    def test_tracks_synchronous_trajectory(self, dataset):
        """One step of staleness must barely perturb the final model."""
        sync = run_mode(dataset, 4, distributed_sgd)
        asyn = run_mode(dataset, 4, distributed_sgd_async)
        rel = np.linalg.norm(sync[0].params - asyn[0].params) / max(
            np.linalg.norm(sync[0].params), 1e-12
        )
        assert rel < 0.1

    def test_loss_decreases(self, dataset):
        out = run_mode(dataset, 4, distributed_sgd_async, epochs=4)
        assert out[0].final_loss < out[0].losses[0]

    def test_same_bytes_as_sync(self, dataset):
        """The pipeline changes *when* reductions complete, not their size."""
        sync = run_mode(dataset, 4, distributed_sgd)
        asyn = run_mode(dataset, 4, distributed_sgd_async)
        ratio = asyn.trace.total_bytes_sent / sync.trace.total_bytes_sent
        assert 0.9 < ratio < 1.1

    def test_ranks_agree(self, dataset):
        out = run_mode(dataset, 4, distributed_sgd_async)
        for r in range(1, 4):
            assert np.allclose(out[r].params, out[0].params, atol=1e-9)

    def test_non_power_of_two(self, dataset):
        out = run_mode(dataset, 3, distributed_sgd_async)
        assert len(out[0].losses) == 2

    def test_dense_mode_rejected(self, dataset):
        def prog(comm):
            cfg = SGDConfig(epochs=1, batch_size=25, lr=0.5, mode="dense")
            return distributed_sgd_async(
                comm, dataset, LogisticRegression(dataset.n_features, 1e-5), cfg
            )

        with pytest.raises(RankError):
            run_ranks(prog, 2)

    def test_history_records_epochs(self, dataset):
        out = run_mode(dataset, 2, distributed_sgd_async, epochs=3)
        assert [r.epoch for r in out[0].records] == [0, 1, 2]
        assert all(r.bytes_sent > 0 for r in out[0].records)
