"""Tests for the analytic cost bounds: replayed algorithms must land inside
the paper's lower/upper sandwiches (§5.3, Lemmas 5.1/5.2)."""

import numpy as np
import pytest

from repro.collectives import (
    dsar_split_allgather,
    ssar_recursive_double,
    ssar_split_allgather,
)
from repro.costmodel import (
    beta_dense,
    beta_sparse,
    dense_rabenseifner_time,
    dense_rec_dbl_time,
    dense_ring_time,
    dsar_split_ag_bounds,
    latency_rec_dbl,
    latency_split,
    lemma_5_1_lower,
    lemma_5_2_lower,
    max_dsar_speedup,
    ssar_rec_dbl_bounds,
    ssar_split_ag_bounds,
)
from repro.netsim import NetworkModel, replay
from repro.runtime import run_ranks
from repro.streams import SparseStream

from conftest import make_rank_stream

#: bounds ignore compute, so replay with gamma = 0
MODEL = NetworkModel(name="bounds", alpha=1e-6, beta=1e-9, gamma=0.0)


def replayed_time(algo, nranks, dim, nnz, seed=7000, **kwargs):
    out = run_ranks(
        lambda comm: algo(comm, make_rank_stream(dim, nnz, comm.rank, seed), **kwargs), nranks
    )
    return replay(out.trace, MODEL).makespan


class TestBasics:
    def test_beta_ordering(self):
        # beta_d < beta_s always (§5.2)
        assert beta_dense(MODEL) < beta_sparse(MODEL)

    def test_latencies(self):
        assert latency_rec_dbl(8, MODEL) == pytest.approx(3e-6)
        assert latency_split(8, MODEL) == pytest.approx(7e-6 + 3e-6)
        assert latency_rec_dbl(1, MODEL) == 0.0

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            latency_rec_dbl(0, MODEL)

    def test_bounds_ordering(self):
        for P in (2, 4, 16):
            b = ssar_rec_dbl_bounds(P, 1000, MODEL)
            assert b.lower <= b.upper
            b = ssar_split_ag_bounds(P, 1000, MODEL)
            assert b.lower <= b.upper
            b = dsar_split_ag_bounds(P, 1000, 1 << 20, MODEL)
            assert b.lower <= b.upper

    def test_max_dsar_speedup(self):
        # kappa = 0.5 -> 4x (the paper's example)
        assert max_dsar_speedup(0.5) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            max_dsar_speedup(0.0)


class TestMeasuredWithinBounds:
    """The replayed runtime of each algorithm must fall inside the paper's
    sandwich. 10% slack covers stream headers and dict wrappers."""

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_ssar_rec_dbl(self, nranks):
        dim, nnz = 1 << 20, 2000
        t = replayed_time(ssar_recursive_double, nranks, dim, nnz)
        b = ssar_rec_dbl_bounds(nranks, nnz, MODEL)
        assert b.contains(t, slack=1.10), f"t={t}, bounds=({b.lower}, {b.upper})"

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_ssar_split_ag(self, nranks):
        dim, nnz = 1 << 20, 2000
        t = replayed_time(ssar_split_allgather, nranks, dim, nnz)
        b = ssar_split_ag_bounds(nranks, nnz, MODEL)
        assert b.contains(t, slack=1.10), f"t={t}, bounds=({b.lower}, {b.upper})"

    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_dsar_split_ag(self, nranks):
        dim, nnz = 1 << 16, 800
        t = replayed_time(dsar_split_allgather, nranks, dim, nnz)
        b = dsar_split_ag_bounds(nranks, nnz, dim, MODEL)
        assert b.contains(t, slack=1.10), f"t={t}, bounds=({b.lower}, {b.upper})"

    def test_full_overlap_reaches_rec_dbl_lower_bound(self):
        """Fully overlapping supports: intermediate size stays k, so the
        measured time approaches the lower bound of §5.3.1."""
        dim, k, P = 1 << 20, 1000, 8
        idx = np.arange(k, dtype=np.uint32)

        def prog(comm):
            vals = np.ones(k, dtype=np.float32)
            return ssar_recursive_double(comm, SparseStream(dim, indices=idx, values=vals))

        out = run_ranks(prog, P)
        t = replay(out.trace, MODEL).makespan
        b = ssar_rec_dbl_bounds(P, k, MODEL)
        assert t <= (b.lower + b.upper) / 2  # near the bottom of the sandwich

    def test_disjoint_supports_near_upper_bound(self):
        """Disjoint supports: intermediate sizes double every round."""
        dim, k, P = 1 << 20, 1000, 8

        def prog(comm):
            idx = np.arange(comm.rank * k, (comm.rank + 1) * k, dtype=np.uint32)
            return ssar_recursive_double(
                comm, SparseStream(dim, indices=idx, values=np.ones(k, dtype=np.float32))
            )

        out = run_ranks(prog, P)
        t = replay(out.trace, MODEL).makespan
        b = ssar_rec_dbl_bounds(P, k, MODEL)
        assert t >= (b.lower + b.upper) / 3  # clearly above the fully-overlapping case


class TestLemmas:
    def test_lemma_5_1_orderings(self):
        # the no-overlap bound dominates the full-overlap bound for P > 2
        for P in (4, 8, 32):
            assert lemma_5_1_lower(P, 1000, MODEL, overlap="none") > lemma_5_1_lower(
                P, 1000, MODEL, overlap="full"
            )

    def test_lemma_5_1_invalid_overlap(self):
        with pytest.raises(ValueError):
            lemma_5_1_lower(4, 10, MODEL, overlap="partial")

    def test_lemma_5_2_lower_bounds_dsar(self):
        """Any DSAR execution must replay slower than the Lemma 5.2 bound."""
        dim, nnz, P = 1 << 16, 2000, 8
        t = replayed_time(dsar_split_allgather, P, dim, nnz)
        assert t >= lemma_5_2_lower(P, dim, MODEL) * 0.5  # latency model differs by const

    def test_dsar_speedup_capped(self):
        """Measured dense/DSAR speedup stays below the 2/kappa cap."""
        dim, nnz, P = 1 << 16, 2000, 8
        t_dsar = replayed_time(dsar_split_allgather, P, dim, nnz)
        t_dense = dense_rabenseifner_time(P, dim, MODEL)
        kappa = 0.5  # float32: delta = N/2
        assert t_dense / t_dsar <= max_dsar_speedup(kappa) * 1.2


class TestDenseFormulas:
    def test_p1_is_free(self):
        assert dense_ring_time(1, 1000, MODEL) == 0.0
        assert dense_rec_dbl_time(1, 1000, MODEL) == 0.0
        assert dense_rabenseifner_time(1, 1000, MODEL) == 0.0

    def test_rabenseifner_beats_rec_dbl_for_large_n(self):
        n, P = 1 << 24, 16
        assert dense_rabenseifner_time(P, n, MODEL) < dense_rec_dbl_time(P, n, MODEL)

    def test_rec_dbl_beats_ring_for_small_n(self):
        n, P = 64, 16
        assert dense_rec_dbl_time(P, n, MODEL) < dense_ring_time(P, n, MODEL)

    def test_monotone_in_dimension(self):
        times = [dense_ring_time(8, n, MODEL) for n in (1 << 10, 1 << 14, 1 << 18)]
        assert times == sorted(times)
