"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import SparseStream, reduce_streams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_rank_stream(
    dimension: int,
    nnz: int,
    rank: int,
    base_seed: int = 7000,
    value_dtype=np.float32,
) -> SparseStream:
    """Deterministic per-rank random stream (same recipe everywhere)."""
    gen = np.random.default_rng(base_seed + rank)
    return SparseStream.random_uniform(dimension, nnz=nnz, rng=gen, value_dtype=value_dtype)


def reference_sum(dimension: int, nnz: int, nranks: int, base_seed: int = 7000) -> np.ndarray:
    """Dense reference sum of the per-rank streams."""
    return reduce_streams(
        [make_rank_stream(dimension, nnz, r, base_seed) for r in range(nranks)]
    ).to_dense()
