"""Process backend internals: wire format, p2p semantics, failure handling.

The generic point-to-point/collective semantics are asserted for the thread
backend in ``test_runtime.py``; this file re-asserts the same contract over
real multiprocess transport and covers what only exists there — the §5.1
wire encoding, cross-process payload isolation, and process death handling.
"""

import time

import numpy as np
import pytest

from repro.quant import QSGDQuantizer
from repro.runtime import RankError, run_ranks
from repro.runtime.wire import (
    FLAG_DENSE,
    FLAG_SPARSE,
    decode_message,
    decode_payload,
    encode_message,
    encode_payload,
)
from repro.streams import SparseStream

BACKEND = "process"


class PoisonPayload:
    """Payload whose unpickle raises in the receiving process (test helper)."""

    def __init__(self) -> None:
        self.x = 1

    def comm_nbytes(self) -> int:
        return 8

    def __setstate__(self, state):
        raise RuntimeError("poisoned payload")


class TestWireFormat:
    def test_sparse_stream_round_trip(self):
        s = SparseStream(1000, indices=[3, 500, 999], values=[1.5, -2.0, 7.25])
        out = decode_payload(encode_payload(s))
        assert isinstance(out, SparseStream)
        assert out.dimension == 1000 and not out.is_dense
        assert np.array_equal(out.indices, s.indices)
        assert np.array_equal(out.values, s.values)
        assert out.value_dtype == s.value_dtype

    def test_dense_stream_round_trip(self):
        s = SparseStream(64, dense=np.arange(64, dtype=np.float64), value_dtype=np.float64)
        out = decode_payload(encode_payload(s))
        assert out.is_dense
        assert np.array_equal(out.to_dense(), s.to_dense())

    def test_header_word_is_first(self):
        """§5.1: the first word of a stream buffer is the sparse/dense flag."""
        sparse_blob = encode_payload(SparseStream(10, indices=[1], values=[1.0]))
        dense_blob = encode_payload(SparseStream(10, dense=np.zeros(10, dtype=np.float32)))
        # byte 0 is the kind discriminator; the flag word follows
        assert int.from_bytes(sparse_blob[1:9], "little") == FLAG_SPARSE
        assert int.from_bytes(dense_blob[1:9], "little") == FLAG_DENSE

    def test_value_wire_bytes_annotation_survives(self):
        s = SparseStream(100, indices=[5], values=[2.0])
        s.value_wire_bytes = 1.25
        assert decode_payload(encode_payload(s)).value_wire_bytes == 1.25
        s.value_wire_bytes = None
        assert decode_payload(encode_payload(s)).value_wire_bytes is None

    def test_empty_stream_round_trip(self):
        out = decode_payload(encode_payload(SparseStream.zeros(50)))
        assert out.dimension == 50 and out.nnz == 0

    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_all_value_dtypes(self, dtype):
        s = SparseStream(32, indices=[0, 31], values=[1.0, -1.0], value_dtype=dtype)
        out = decode_payload(encode_payload(s))
        assert out.value_dtype == np.dtype(dtype)
        assert np.array_equal(out.values, s.values)

    def test_decoded_arrays_are_writable(self):
        out = decode_payload(encode_payload(SparseStream(10, indices=[1], values=[1.0])))
        out.values[0] = 9.0  # must not raise (fresh buffer, not a readonly view)
        assert out.values[0] == 9.0

    def test_pickle_fallback_payloads(self):
        for obj in [42, "hello", (1, 2.5), {"k": np.arange(3)}, None,
                    QSGDQuantizer(bits=4, bucket_size=64, seed=1)]:
            out = decode_payload(encode_payload(obj))
            if isinstance(obj, dict):
                assert np.array_equal(out["k"], obj["k"])
            elif isinstance(obj, QSGDQuantizer):
                assert out.bits == obj.bits
            else:
                assert out == obj

    def test_message_framing(self):
        tag, seq, nbytes, epoch, payload = decode_message(encode_message(7, 3, 128, "data"))
        assert (tag, seq, nbytes, epoch, payload) == (7, 3, 128, 0, "data")

    def test_message_framing_carries_epoch(self):
        blob = encode_message(7, 3, 128, "data", 5)
        tag, seq, nbytes, epoch, payload = decode_message(blob)
        assert (tag, seq, nbytes, epoch, payload) == (7, 3, 128, 5, "data")

    def test_corrupt_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            decode_payload(b"\xff garbage")


class TestProcessPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(5), 1, tag=7)
                return None
            return comm.recv(0, tag=7)

        out = run_ranks(prog, 2, backend=BACKEND)
        assert np.array_equal(out[1], np.arange(5))

    def test_fifo_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(20)]

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == list(range(20))

    def test_tags_do_not_cross(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            second = comm.recv(0, tag=2)
            first = comm.recv(0, tag=1)
            return (first, second)

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == ("a", "b")

    def test_sendrecv_exchange(self):
        def prog(comm):
            peer = 1 - comm.rank
            return comm.sendrecv(comm.rank * 10, peer, tag=5)

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[0] == 10 and out[1] == 0

    def test_large_payload_exchange_no_deadlock(self):
        """Simultaneous multi-MB sendrecv must not deadlock on pipe buffers."""
        def prog(comm):
            peer = 1 - comm.rank
            big = np.full(1 << 20, float(comm.rank), dtype=np.float64)  # 8 MB
            got = comm.sendrecv(big, peer, tag=2)
            return float(got[0])

        out = run_ranks(prog, 2, backend=BACKEND, timeout=60.0)
        assert out[0] == 1.0 and out[1] == 0.0

    def test_late_large_send_to_finished_rank_completes(self):
        """Buffered-send contract: an unmatched multi-MB send to a rank that
        already exited must still complete (the parent drains the pipe), not
        block on the ~64 KiB pipe buffer until timeout."""
        def prog(comm):
            if comm.rank == 0:
                return "done-early"  # exits immediately, never receives
            time.sleep(0.3)  # let rank 0 finish first
            big = np.zeros(1 << 18, dtype=np.float64)  # 2 MB >> pipe capacity
            comm.send(big, 0, tag=5)
            return "sent"

        out = run_ranks(prog, 2, backend=BACKEND, timeout=30.0)
        assert out.results == ["done-early", "sent"]

    def test_cross_process_isolation_is_physical(self):
        """Receiver mutations cannot reach the sender: separate address spaces."""
        def prog(comm):
            arr = np.zeros(4)
            if comm.rank == 0:
                comm.send(arr, 1)
                comm.recv(1, tag=9)  # sync
                return float(arr[0])
            got = comm.recv(0)
            got[0] = 99.0
            comm.send(0, 0, tag=9)
            return None

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[0] == 0.0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_negative_tags_rejected_on_every_backend(self, backend):
        """Negative tags are reserved for transport framing (the FIN marker);
        both backends must reject them identically instead of the process
        backend silently eating tag -1 as a shutdown frame."""
        def sender(comm):
            if comm.rank == 0:
                comm.send(b"x", 1, tag=-1)
            else:
                comm.recv(0, tag=-1)

        with pytest.raises(RankError) as exc_info:
            run_ranks(sender, 2, backend=backend)
        assert isinstance(exc_info.value.original, ValueError)
        assert "non-negative" in str(exc_info.value.original)

    def test_self_send_rejected(self):
        def prog(comm):
            comm.send(1, comm.rank)

        with pytest.raises(RankError):
            run_ranks(prog, 2, backend=BACKEND)

    def test_out_of_range_dest_rejected(self):
        def prog(comm):
            comm.send(1, 5)

        with pytest.raises(RankError):
            run_ranks(prog, 2, backend=BACKEND)

    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                handle = comm.isend(42, 1)
                assert handle.test()
                handle.wait()
                return None
            handle = comm.irecv(0)
            return handle.wait()

        out = run_ranks(prog, 2, backend=BACKEND)
        assert out[1] == 42


class TestProcessCollectiveHelpers:
    @pytest.mark.parametrize("nranks", [2, 3, 5, 8])
    def test_barrier_completes(self, nranks):
        out = run_ranks(lambda comm: (comm.barrier(), comm.rank)[1], nranks, backend=BACKEND)
        assert out.results == list(range(nranks))

    @pytest.mark.parametrize("nranks,root", [(2, 0), (5, 2), (8, 7)])
    def test_bcast(self, nranks, root):
        def prog(comm):
            value = f"payload-{comm.rank}" if comm.rank == root else None
            return comm.bcast(value, root=root)

        out = run_ranks(prog, nranks, backend=BACKEND)
        assert all(v == f"payload-{root}" for v in out.results)

    @pytest.mark.parametrize("nranks", [2, 4, 6])
    def test_gather_to_root(self, nranks):
        out = run_ranks(
            lambda comm: comm.gather_to_root(comm.rank * 2, root=0), nranks, backend=BACKEND
        )
        assert out[0] == [2 * r for r in range(nranks)]
        assert all(out[r] is None for r in range(1, nranks))


class TestProcessFailureHandling:
    def test_rank_error_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(1)  # would deadlock without abort

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 2, backend=BACKEND)
        assert exc_info.value.rank == 1
        assert isinstance(exc_info.value.original, ValueError)

    def test_blocked_ranks_abort_not_deadlock(self):
        start = time.monotonic()

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("fail fast")
            comm.recv(0)

        with pytest.raises(RankError) as exc_info:
            run_ranks(prog, 4, backend=BACKEND)
        assert exc_info.value.rank == 0
        assert time.monotonic() - start < 30.0

    def test_timeout_detects_deadlock(self):
        def prog(comm):
            comm.recv(1 - comm.rank)  # mutual recv: classic deadlock

        with pytest.raises(TimeoutError):
            run_ranks(prog, 2, backend=BACKEND, timeout=1.0)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_ranks(lambda c: None, 0, backend=BACKEND)

    def test_undecodable_frame_raises_instead_of_none_results(self):
        """An abort with no reported rank error (pump hit an undecodable
        frame) must raise, not return a ParallelResult with silent Nones."""
        def prog(comm):
            if comm.rank == 0:
                comm.send(PoisonPayload(), 1)
                return "rank0-ok"
            return comm.recv(0)

        with pytest.raises(RankError):
            run_ranks(prog, 2, backend=BACKEND, timeout=30.0)

    def test_peer_of_hard_died_rank_is_unblocked(self):
        """A rank blocked sending a large payload to a rank that hard-died
        (os._exit, no error report) still completes, its trace preserved."""
        import os as _os

        from repro.runtime import Trace

        def prog(comm):
            if comm.rank == 1:
                _os._exit(3)  # dies without reporting anything
            time.sleep(0.3)
            comm.send(np.zeros(1 << 20, dtype=np.float64), 1, tag=8)  # 8 MB
            return "sent"

        t = Trace(2)
        with pytest.raises(RankError, match="process died"):
            run_ranks(prog, 2, backend=BACKEND, trace=t, timeout=30.0)
        # rank 0's buffered send completed and its events were shipped back
        assert any(e.op == "send" and e.nbytes > 1 << 22 for e in t.events(0))

    def test_unpicklable_exception_still_reported(self):
        def prog(comm):
            class Local(Exception):  # unpicklable: defined inside a function
                pass

            raise Local("opaque failure")

        with pytest.raises(RankError, match="opaque failure"):
            run_ranks(prog, 2, backend=BACKEND)


class TestProcessTrace:
    def test_send_recv_events_match(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float32), 1)
            else:
                comm.recv(0)

        out = run_ranks(prog, 2, backend=BACKEND)
        sends = [e for e in out.trace.events(0) if e.op == "send"]
        recvs = [e for e in out.trace.events(1) if e.op == "recv"]
        assert len(sends) == len(recvs) == 1
        assert sends[0].nbytes == recvs[0].nbytes == 48
        assert sends[0].seq == recvs[0].seq

    def test_compute_and_mark_events(self):
        def prog(comm):
            comm.mark("phase")
            comm.compute(1000, "work")

        out = run_ranks(prog, 2, backend=BACKEND)
        ops = [e.op for e in out.trace.events(0)]
        assert ops == ["mark", "compute"]

    def test_accumulating_trace_rebases_seqs(self):
        """Two runs into one trace: channel seq numbers must not collide."""
        from repro.runtime import Trace

        def prog(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=4)
            else:
                comm.recv(0, tag=4)

        trace = Trace(2)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        run_ranks(prog, 2, backend=BACKEND, trace=trace)
        sends = [e for e in trace.events(0) if e.op == "send"]
        assert [e.seq for e in sends] == [0, 1]

    def test_failure_keeps_partial_trace_like_thread_backend(self):
        """A caller-supplied trace keeps pre-failure events on both backends."""
        from repro.runtime import Trace

        def failing(comm):
            if comm.rank == 0:
                comm.send(1, 1, tag=2)
                raise ValueError("die")
            comm.recv(0, tag=2)

        counts = {}
        for backend in ("thread", "process"):
            t = Trace(2)
            with pytest.raises(RankError):
                run_ranks(failing, 2, trace=t, backend=backend)
            counts[backend] = sum(len(events) for events in t)
        assert counts["process"] == counts["thread"] > 0

    def test_world_metadata(self):
        out = run_ranks(lambda c: c.rank, 3, backend=BACKEND)
        assert out.world.size == 3
        assert len(out.world.pids) == 3
