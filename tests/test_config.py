"""Tests for repro.config: constants and the delta threshold rule."""

import numpy as np
import pytest

from repro.config import (
    INDEX_BYTES,
    INDEX_DTYPE,
    SUPPORTED_VALUE_DTYPES,
    delta_threshold,
    validate_value_dtype,
)


class TestConstants:
    def test_index_dtype_is_uint32(self):
        # §8: "we fix the datatype for storing an index to an unsigned int"
        assert INDEX_DTYPE == np.dtype(np.uint32)

    def test_index_bytes_matches_dtype(self):
        assert INDEX_BYTES == 4

    def test_supported_dtypes_are_floats(self):
        for dt in SUPPORTED_VALUE_DTYPES:
            assert np.issubdtype(dt, np.floating)


class TestDeltaThreshold:
    def test_float32_paper_formula(self):
        # delta = N * isize / (c + isize) = N * 4 / 8 = N / 2
        assert delta_threshold(1000, 4) == 500

    def test_float64(self):
        # N * 8 / 12 = 2N/3
        assert delta_threshold(900, 8) == 600

    def test_float16(self):
        # N * 2 / 6 = N/3
        assert delta_threshold(900, 2) == 300

    def test_zero_dimension(self):
        assert delta_threshold(0, 4) == 0

    def test_sparse_never_wins_above_delta(self):
        n = 10_000
        delta = delta_threshold(n, 4)
        dense_bytes = n * 4
        assert (delta + 1) * (4 + 4) > dense_bytes
        assert delta * (4 + 4) <= dense_bytes

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            delta_threshold(-1, 4)

    @pytest.mark.parametrize("isize,c", [(0, 4), (4, 0), (-4, 4)])
    def test_nonpositive_itemsizes_rejected(self, isize, c):
        with pytest.raises(ValueError):
            delta_threshold(100, isize, c)

    def test_monotone_in_dimension(self):
        values = [delta_threshold(n, 4) for n in (0, 10, 100, 1000)]
        assert values == sorted(values)


class TestValidateValueDtype:
    @pytest.mark.parametrize("dt", [np.float16, np.float32, np.float64])
    def test_accepts_supported(self, dt):
        assert validate_value_dtype(dt) == np.dtype(dt)

    @pytest.mark.parametrize("dt", [np.int32, np.uint8, np.complex64, bool])
    def test_rejects_unsupported(self, dt):
        with pytest.raises(TypeError):
            validate_value_dtype(dt)

    def test_accepts_dtype_instances(self):
        assert validate_value_dtype(np.dtype("float32")) == np.dtype(np.float32)
