"""Tests for the linear models: gradient correctness and sparsity structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mlopt import LinearSVM, LogisticRegression, make_sparse_classification
from repro.mlopt.linear import sparse_grad_from_batch


@pytest.fixture
def small_dataset():
    return make_sparse_classification(80, 500, 15, seed=11)


class TestSparseGradFromBatch:
    def test_matches_dense_matmul(self, small_dataset):
        X = small_dataset.X[:10]
        dloss = np.random.default_rng(0).standard_normal(10)
        stream = sparse_grad_from_batch(X, dloss)
        dense_ref = np.asarray(X.T @ dloss).ravel() / 10
        assert np.allclose(stream.to_dense(), dense_ref, atol=1e-5)

    def test_support_is_row_union(self, small_dataset):
        X = small_dataset.X[:5]
        stream = sparse_grad_from_batch(X, np.ones(5))
        union = np.unique(X.indices)
        assert set(stream.indices.tolist()) <= set(union.tolist())

    def test_empty_batch(self):
        X = sp.csr_matrix((0, 100), dtype=np.float32)
        stream = sparse_grad_from_batch(X, np.empty(0))
        assert stream.nnz == 0

    def test_wrong_dloss_shape(self, small_dataset):
        with pytest.raises(ValueError):
            sparse_grad_from_batch(small_dataset.X[:5], np.ones(4))


@pytest.mark.parametrize("model_cls", [LogisticRegression, LinearSVM])
class TestLinearModels:
    def test_grad_stream_matches_dense_grad(self, model_cls, small_dataset):
        """Sparse data-term gradient + reg == reference dense gradient."""
        model = model_cls(small_dataset.n_features, reg=1e-3)
        rng = np.random.default_rng(1)
        w = rng.standard_normal(small_dataset.n_features) * 0.1
        stream = model.grad_stream(w, small_dataset.X, small_dataset.y)
        full = model.grad_dense(w, small_dataset.X, small_dataset.y)
        assert np.allclose(stream.to_dense() + model.reg * w, full, atol=1e-4)

    def test_gradient_check_finite_difference(self, model_cls, small_dataset):
        """Dense gradient vs central differences on random coordinates."""
        model = model_cls(small_dataset.n_features, reg=1e-3)
        rng = np.random.default_rng(2)
        w = rng.standard_normal(small_dataset.n_features) * 0.05
        grad = model.grad_dense(w, small_dataset.X, small_dataset.y)
        eps = 1e-6
        # probe only coordinates with data support (others are reg-only)
        support = np.unique(small_dataset.X.indices)[:20]
        for j in support:
            w_p, w_m = w.copy(), w.copy()
            w_p[j] += eps
            w_m[j] -= eps
            num = (model.loss(w_p, small_dataset.X, small_dataset.y)
                   - model.loss(w_m, small_dataset.X, small_dataset.y)) / (2 * eps)
            assert num == pytest.approx(grad[j], abs=5e-4)

    def test_loss_decreases_under_gd(self, model_cls, small_dataset):
        model = model_cls(small_dataset.n_features, reg=1e-4)
        w = np.zeros(small_dataset.n_features)
        losses = [model.loss(w, small_dataset.X, small_dataset.y)]
        for _ in range(30):
            w -= 0.5 * model.grad_dense(w, small_dataset.X, small_dataset.y)
            losses.append(model.loss(w, small_dataset.X, small_dataset.y))
        assert losses[-1] < losses[0] * 0.9

    def test_accuracy_improves(self, model_cls, small_dataset):
        model = model_cls(small_dataset.n_features, reg=1e-4)
        w = np.zeros(small_dataset.n_features)
        for _ in range(60):
            w -= 0.5 * model.grad_dense(w, small_dataset.X, small_dataset.y)
        assert model.accuracy(w, small_dataset.X, small_dataset.y) > 0.7

    def test_regularization_shrinks(self, model_cls):
        model = model_cls(10, reg=0.1)
        w = np.ones(10)
        model.apply_regularization(w, lr=1.0)
        assert np.allclose(w, 0.9)

    def test_invalid_construction(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(0)
        with pytest.raises(ValueError):
            model_cls(10, reg=-1.0)

    def test_empty_eval(self, model_cls):
        model = model_cls(50)
        X = sp.csr_matrix((0, 50), dtype=np.float32)
        assert model.accuracy(np.zeros(50), X, np.empty(0)) == 0.0


class TestLossShapes:
    def test_logistic_loss_at_zero_weights(self, small_dataset):
        model = LogisticRegression(small_dataset.n_features, reg=0.0)
        # log(2) at w = 0
        assert model.loss(np.zeros(small_dataset.n_features), small_dataset.X,
                          small_dataset.y) == pytest.approx(np.log(2), abs=1e-6)

    def test_hinge_loss_at_zero_weights(self, small_dataset):
        model = LinearSVM(small_dataset.n_features, reg=0.0)
        assert model.loss(np.zeros(small_dataset.n_features), small_dataset.X,
                          small_dataset.y) == pytest.approx(1.0, abs=1e-6)

    def test_hinge_gradient_zero_when_margins_large(self):
        model = LinearSVM(4, reg=0.0)
        X = sp.csr_matrix(np.eye(4, dtype=np.float32))
        y = np.ones(4, dtype=np.float32)
        w = np.full(4, 10.0)  # every margin = 10 > 1
        grad = model.grad_dense(w, X, y)
        assert np.allclose(grad, 0.0)
