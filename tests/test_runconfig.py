"""RunConfig: one frozen bundle for every launcher/collective knob.

Satellite of the chunked-overlap PR: ``run_ranks``,
``run_sparse_allreduce`` and ``serve_rank`` all accept ``config=`` and
fold their individual kwargs *over* it — an explicitly passed kwarg
always wins, and omitting both falls back to the documented defaults.
These tests pin the dataclass contract (frozen, validated,
``replace``/``merged`` semantics) and the folding behaviour at each
entry point, using knobs a rank program can actually observe
(``comm.topology``, ``comm.op_timeout``, the chunked trace shape).
"""

import dataclasses
import socket
import threading

import numpy as np
import pytest

from repro.collectives import run_sparse_allreduce
from repro.runtime import RunConfig, run_ranks, serve_rank
from repro.runtime.runconfig import _UNSET

from conftest import make_rank_stream, reference_sum

DIM, NNZ = 2048, 64


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestDataclassContract:
    def test_defaults_match_entry_point_defaults(self):
        cfg = RunConfig()
        assert cfg.backend == "thread"
        assert cfg.topology is None
        assert cfg.fault_plan is None
        assert cfg.op_timeout is None
        assert cfg.timeout == 300.0
        assert cfg.chunks == 1

    def test_frozen(self):
        cfg = RunConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.backend = "process"

    def test_replace_returns_new_instance(self):
        cfg = RunConfig()
        other = cfg.replace(backend="socket", chunks=4)
        assert other.backend == "socket" and other.chunks == 4
        assert cfg.backend == "thread" and cfg.chunks == 1  # original untouched

    def test_merged_drops_unset_keeps_real_values(self):
        cfg = RunConfig(timeout=60.0, topology="2x2")
        same = cfg.merged(timeout=_UNSET, topology=_UNSET)
        assert same is cfg  # nothing to fold -> no copy
        folded = cfg.merged(timeout=None, topology=_UNSET, chunks=8)
        assert folded.timeout is None  # None is a real override, not "unset"
        assert folded.topology == "2x2"
        assert folded.chunks == 8

    def test_replace_and_merged_revalidate(self):
        with pytest.raises(ValueError, match="chunks"):
            RunConfig().replace(chunks=0)
        with pytest.raises(ValueError, match="timeout"):
            RunConfig().merged(timeout=-1.0)

    @pytest.mark.parametrize("bad", [0, -3, True, 2.5, "4"])
    def test_invalid_chunks_rejected(self, bad):
        with pytest.raises((TypeError, ValueError), match="chunks"):
            RunConfig(chunks=bad)

    @pytest.mark.parametrize("field", ["timeout", "op_timeout"])
    @pytest.mark.parametrize("bad", [0, -0.5])
    def test_non_positive_timeouts_rejected(self, field, bad):
        with pytest.raises(ValueError, match=field):
            RunConfig(**{field: bad})


def _observe_knobs(comm):
    return comm.topology.nnodes, comm.op_timeout


class TestRunRanksFolding:
    def test_config_supplies_topology_and_op_timeout(self):
        cfg = RunConfig(topology="2x2", op_timeout=12.5)
        out = run_ranks(_observe_knobs, 4, config=cfg)
        assert out[0] == (2, 12.5)

    def test_explicit_kwargs_win_over_config(self):
        cfg = RunConfig(topology="2x2", op_timeout=12.5)
        out = run_ranks(_observe_knobs, 4, config=cfg, topology="4x1", op_timeout=3.0)
        assert out[0] == (4, 3.0)

    def test_config_supplies_backend(self):
        def prog(comm):
            from repro.collectives import ssar_recursive_double

            return ssar_recursive_double(comm, make_rank_stream(DIM, NNZ, comm.rank))

        thread = run_ranks(prog, 2, backend="thread")
        proc = run_ranks(prog, 2, config=RunConfig(backend="process"))
        for r in range(2):
            assert np.array_equal(thread[r].to_dense(), proc[r].to_dense())
        assert proc.trace.total_bytes_sent == thread.trace.total_bytes_sent

    def test_config_timeout_enforced_and_overridable(self):
        import time

        def slow(comm):
            time.sleep(0.5)
            return comm.rank

        cfg = RunConfig(timeout=0.05)
        with pytest.raises(TimeoutError):
            run_ranks(slow, 2, config=cfg)
        out = run_ranks(slow, 2, config=cfg, timeout=30.0)  # explicit wins
        assert out.results == [0, 1]


class TestRunSparseAllreduceFolding:
    def test_config_chunks_reach_the_hierarchical_collective(self):
        """chunks from the config produce the chunked schedule (more
        messages: each chunk travels separately) with the identical sum."""
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        base = run_sparse_allreduce(streams, "ssar_hier", topology="2x2")
        cfg = RunConfig(topology="2x2", chunks=4)
        chunked = run_sparse_allreduce(streams, "ssar_hier", config=cfg)
        for r in range(4):
            assert np.array_equal(base[r].to_dense(), chunked[r].to_dense())
        assert chunked.trace.total_messages > base.trace.total_messages

    def test_explicit_chunks_win_over_config(self):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        base = run_sparse_allreduce(streams, "ssar_hier", topology="2x2")
        cfg = RunConfig(topology="2x2", chunks=4)
        unchunked = run_sparse_allreduce(streams, "ssar_hier", config=cfg, chunks=1)
        assert unchunked.trace.total_messages == base.trace.total_messages

    def test_invalid_chunks_raise_in_the_driver_not_the_ranks(self):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(2)]
        with pytest.raises(ValueError, match="chunks"):
            run_sparse_allreduce(streams, "ssar_hier", chunks=0)

    def test_config_backend_and_correctness(self):
        streams = [make_rank_stream(DIM, NNZ, r) for r in range(4)]
        out = run_sparse_allreduce(
            streams, "ssar_hier", config=RunConfig(backend="shmem", topology=2, chunks=2)
        )
        ref = reference_sum(DIM, NNZ, 4)
        for r in range(4):
            assert np.allclose(out[r].to_dense(), ref, atol=1e-4)


class TestServeRankFolding:
    def _assemble(self, nranks, program, **kwargs):
        port = _free_port()
        results, errors = {}, {}

        def join(rank):
            try:
                results[rank] = serve_rank(
                    ("127.0.0.1", port), rank, nranks,
                    program=program, rendezvous_timeout=30.0, **kwargs,
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced by the test
                errors[rank] = exc

        threads = [threading.Thread(target=join, args=(r,)) for r in range(nranks)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not errors, f"serve_rank ranks failed: {errors}"
        return results

    def test_config_supplies_topology_and_op_timeout(self):
        cfg = RunConfig(topology=2, op_timeout=17.0)
        results = self._assemble(2, _observe_knobs, config=cfg)
        assert results[0] == (1, 17.0)  # 2 ranks per node -> one node

    def test_explicit_kwargs_win_over_config(self):
        cfg = RunConfig(topology=2, op_timeout=17.0)
        results = self._assemble(
            2, _observe_knobs, config=cfg, topology=1, op_timeout=5.0
        )
        assert results[0] == (2, 5.0)  # 1 rank per node -> two nodes

    def test_config_topology_validated_before_any_socket_work(self):
        # an unroutable rendezvous would hang if validation came later
        with pytest.raises(ValueError, match="describes 4 ranks"):
            serve_rank(("127.0.0.1", 1), 0, 2, config=RunConfig(topology="2x2"))
