"""Tests for the stochastic fill-in analysis (Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    empirical_union_density,
    expected_density_of_sum,
    expected_union_size,
    expected_union_size_inclusion_exclusion,
    monte_carlo_union_size,
    union_density_curve,
)


class TestClosedForm:
    def test_single_rank(self):
        assert expected_union_size(100, 1000, 1) == pytest.approx(100.0)

    def test_zero_nnz(self):
        assert expected_union_size(0, 1000, 8) == 0.0

    def test_full_density(self):
        assert expected_union_size(1000, 1000, 3) == pytest.approx(1000.0)

    def test_union_bound(self):
        # E[K] <= P * k always
        for k, n, p in [(10, 1000, 8), (100, 512, 4), (1, 10, 10)]:
            assert expected_union_size(k, n, p) <= p * k + 1e-9

    def test_bounded_by_dimension(self):
        assert expected_union_size(400, 512, 64) <= 512.0

    def test_matches_inclusion_exclusion(self):
        """The paper's alternating-sum form equals the closed form."""
        for k, n, p in [(5, 64, 3), (10, 128, 5), (30, 512, 8)]:
            closed = expected_union_size(k, n, p)
            incl = expected_union_size_inclusion_exclusion(k, n, p)
            assert closed == pytest.approx(incl, rel=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_union_size(-1, 100, 2)
        with pytest.raises(ValueError):
            expected_union_size(101, 100, 2)
        with pytest.raises(ValueError):
            expected_union_size(10, 100, -1)

    def test_monte_carlo_agreement(self):
        gen = np.random.default_rng(42)
        k, n, p = 20, 256, 6
        mc = monte_carlo_union_size(k, n, p, gen, trials=200)
        expected = expected_union_size(k, n, p)
        assert mc == pytest.approx(expected, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=5000),
        data=st.data(),
    )
    def test_property_monotone_in_p(self, n, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        sizes = [expected_union_size(k, n, p) for p in (1, 2, 4, 8, 16)]
        assert all(a <= b + 1e-9 for a, b in zip(sizes, sizes[1:]))


class TestDensityCurves:
    def test_expected_density_figure1_shape(self):
        """Fig. 1: 10% per-node density at 64 nodes is essentially dense."""
        assert expected_density_of_sum(0.10, 64) > 0.99
        assert expected_density_of_sum(0.001, 4) < 0.005

    def test_vectorised_curve(self):
        nodes = np.array([1, 2, 4, 8])
        curve = union_density_curve(0.05, nodes)
        assert curve.shape == (4,)
        assert np.all(np.diff(curve) > 0)
        assert curve[0] == pytest.approx(0.05)

    def test_bounds(self):
        assert expected_density_of_sum(0.0, 100) == 0.0
        assert expected_density_of_sum(1.0, 1) == 1.0
        with pytest.raises(ValueError):
            expected_density_of_sum(1.5, 2)

    def test_empirical_union_density(self):
        supports = [np.array([0, 1]), np.array([1, 2])]
        assert empirical_union_density(supports, 10) == pytest.approx(0.3)

    def test_empirical_empty(self):
        assert empirical_union_density([], 10) == 0.0
        assert empirical_union_density([np.array([0])], 0) == 0.0


class TestSelectorCoupling:
    def test_fill_in_drives_dsar_choice(self):
        """The Fig. 1 effect: the same per-node density becomes a dynamic
        (dense) instance as P grows."""
        from repro.collectives import choose_algorithm

        n = 100_000
        k = int(n * 0.05)
        assert choose_algorithm(n, 2, k) != "dsar_split_ag"
        assert choose_algorithm(n, 64, k) == "dsar_split_ag"
