#!/usr/bin/env python
"""ASR-style scaling study (paper §8.4, Fig. 6).

The paper's largest deployment trains a 60M-parameter attention LSTM on
128 GPUs; TopK SGD cuts training from 14 days (16-GPU BMUF baseline) to
under 1.8 days. We reproduce the *scaling shape* with the same recipe at
simulation scale: measure one TopK-SGD gradient-exchange step at P in
{4, 8, 16, 32} ranks on an IB-like network, add a fixed per-step compute
budget, and report throughput scaling vs the dense baseline.

Run:  python examples/asr_scaling.py
"""

import numpy as np

from repro import IB_FDR, SparseStream, dense_allreduce, replay, run_ranks, sparse_allreduce
from repro.core import ErrorFeedback

MODEL_PARAMS = 1 << 21  # 2M-parameter stand-in for the 60M LSTM
K_PER_BUCKET = 4
BUCKET = 512
COMPUTE_PER_STEP_S = 0.050  # fixed local fwd/bwd budget per step


def topk_step(comm):
    """One gradient exchange of TopK SGD (k=4 per 512 bucket)."""
    rng = np.random.default_rng(50 + comm.rank)
    ef = ErrorFeedback(MODEL_PARAMS, K_PER_BUCKET, BUCKET)
    grad = rng.standard_normal(MODEL_PARAMS).astype(np.float32)
    stream = ef.select(grad)
    return sparse_allreduce(comm, stream, algorithm="ssar_split_ag").nnz


def dense_step(comm):
    rng = np.random.default_rng(50 + comm.rank)
    grad = rng.standard_normal(MODEL_PARAMS).astype(np.float32)
    return dense_allreduce(comm, grad, algorithm="dense_ring").shape[0]


def main() -> None:
    print(f"model={MODEL_PARAMS / 1e6:.1f}M params, TopK {K_PER_BUCKET}/{BUCKET} "
          f"({K_PER_BUCKET / BUCKET:.2%} density), IB-like network\n")
    header = (
        f"{'P':>4}{'sparse comm':>13}{'dense comm':>12}"
        f"{'sparse step':>13}{'dense step':>12}{'speedup':>9}{'scal.eff':>10}"
    )
    print(header)
    print("-" * len(header))
    base_throughput = None
    for P in (4, 8, 16, 32):
        sparse_out = run_ranks(topk_step, P)
        dense_out = run_ranks(dense_step, P)
        t_sparse = replay(sparse_out.trace, IB_FDR).makespan
        t_dense = replay(dense_out.trace, IB_FDR).makespan
        # weak-ish scaling: compute budget fixed per step, samples/step = P
        step_sparse = COMPUTE_PER_STEP_S + t_sparse
        step_dense = COMPUTE_PER_STEP_S + t_dense
        throughput = P / step_sparse  # samples/s proxy
        if base_throughput is None:
            base_throughput = throughput / P * 4  # normalise at P=4
        eff = throughput / (base_throughput * P / 4) * (4 / 4)
        print(
            f"{P:>4}{t_sparse * 1e3:>11.1f}ms{t_dense * 1e3:>10.1f}ms"
            f"{step_sparse * 1e3:>11.1f}ms{step_dense * 1e3:>10.1f}ms"
            f"{step_dense / step_sparse:>9.2f}{eff:>10.2f}"
        )
    print("\nDense step time grows with P while the sparse exchange stays nearly")
    print("flat — the Fig. 6b scalability gap that makes 128-GPU training viable.")


if __name__ == "__main__":
    main()
