#!/usr/bin/env python
"""Quantized TopK SGD on a neural network (paper Algorithm 1, §8.3).

Data-parallel training of an MLP on a CIFAR-like task across 8 simulated
ranks, comparing:

* dense SGD (full-precision gradients, Rabenseifner allreduce),
* TopK SGD (k=8 of every 512 coordinates, error feedback),
* TopK + 4-bit QSGD (the full Algorithm 1).

The sparse variants recover the dense accuracy while sending ~50x fewer
bytes per step — the Fig. 4a story.

Run:  python examples/topk_sgd_neural_net.py
"""

from repro import GIGE, TopKSGDConfig, dense_sgd, quantized_topk_sgd, replay, run_ranks
from repro.mlopt import make_cifar_like
from repro.nn import make_eval_fn, make_grad_fn, make_mlp

P = 8
STEPS = 150
DIM = 512


def main() -> None:
    dataset = make_cifar_like(n_samples=1024, dim=DIM)

    def build(comm):
        net = make_mlp(DIM, 10, hidden=(128,), seed=42)
        grad_fn = make_grad_fn(net, dataset, comm, batch_size=32, seed=3)
        eval_fn = make_eval_fn(net, dataset, max_samples=512)
        return net, grad_fn, eval_fn

    def topk_program(comm, bits):
        net, grad_fn, eval_fn = build(comm)
        cfg = TopKSGDConfig(k=8, bucket_size=512, lr=0.05, quantizer_bits=bits)
        return quantized_topk_sgd(
            comm, grad_fn, net.n_params, STEPS, cfg, eval_fn,
            eval_every=50, init_params=net.param_vector(),
        )

    def dense_program(comm):
        net, grad_fn, eval_fn = build(comm)
        return dense_sgd(
            comm, grad_fn, net.n_params, STEPS, lr=0.05 / comm.size,
            eval_fn=eval_fn, eval_every=50, init_params=net.param_vector(),
        )

    variants = {
        "dense SGD": dense_program,
        "TopK (8/512)": lambda c: topk_program(c, None),
        "TopK + 4-bit QSGD": lambda c: topk_program(c, 4),
    }

    header = f"{'variant':<20}{'final acc':>10}{'KB/step':>9}{'GigE comm/step':>16}"
    print(f"MLP ({make_mlp(DIM, 10, hidden=(128,), seed=42).n_params} params), "
          f"P={P}, {STEPS} steps\n")
    print(header)
    print("-" * len(header))
    for name, program in variants.items():
        out = run_ranks(program, P)
        result = out[0]
        acc = result.history[-1]["accuracy"]
        comm_time = replay(out.trace, GIGE.with_(gamma=0.0)).makespan / STEPS
        print(
            f"{name:<20}{acc:>10.3f}{result.mean_bytes_per_step / 1e3:>9.2f}"
            f"{comm_time * 1e3:>14.2f}ms"
        )
    print("\nAccuracy trajectory (TopK + 4-bit):")
    out = run_ranks(lambda c: topk_program(c, 4), P)
    for h in out[0].history:
        print(f"  step {h['step']:>4}: loss={h['loss']:.3f} acc={h['accuracy']:.3f}")


if __name__ == "__main__":
    main()
