#!/usr/bin/env python
"""Non-blocking collectives: overlapping communication with computation.

SparCML implements its collectives "in a nonblocking way, similar as
specified for nonblocking collectives in MPI-3 ... This enables the thread
to proceed with local computations while the operation is performed in the
background" (paper §7). This example triggers a sparse allreduce with
``i_collective``, performs local work while it progresses, then waits.

It also shows the overlap *timing* model used by the end-to-end benches:
with non-blocking reduction a training step costs max(compute, comm)
rather than their sum.

Run:  python examples/nonblocking_overlap.py
"""

import numpy as np

from repro import ARIES, SparseStream, replay, run_ranks
from repro.collectives import ssar_recursive_double
from repro.netsim import overlap_step_time
from repro.runtime import i_collective

P = 8
DIMENSION = 1 << 18
NNZ = 2000


def program(comm):
    rng = np.random.default_rng(comm.rank)
    stream = SparseStream.random_uniform(DIMENSION, nnz=NNZ, rng=rng)

    # launch the collective in the background
    handle = i_collective(comm, ssar_recursive_double, stream)

    # ... proceed with local computation while the reduction progresses ...
    local = rng.standard_normal(200_000)
    local_work = float(np.sum(local * local))  # stand-in for a forward pass
    comm.compute(local.nbytes * 2, "local_overlap_work")

    result = handle.wait()
    return result.nnz, local_work


def main() -> None:
    out = run_ranks(program, P)
    nnz_values = {r: out[r][0] for r in range(P)}
    assert len(set(nnz_values.values())) == 1, "ranks disagree on the reduction"
    print(f"non-blocking sparse allreduce complete: K={out[0][0]} nonzeros on all {P} ranks")

    timing = replay(out.trace, ARIES)
    comm_time = replay(out.trace, ARIES.with_(gamma=0.0)).makespan
    compute_time = timing.makespan - comm_time
    print(f"replayed: comm={comm_time * 1e6:.1f}us, local compute={compute_time * 1e6:.1f}us")
    print(
        f"step time blocking    : {overlap_step_time(compute_time, comm_time, False) * 1e6:.1f}us"
    )
    print(
        f"step time non-blocking: {overlap_step_time(compute_time, comm_time, True) * 1e6:.1f}us"
    )


if __name__ == "__main__":
    main()
