#!/usr/bin/env python
"""Quickstart: sparse allreduce vs the dense MPI baseline.

Eight simulated ranks each contribute a sparse gradient-like vector
(dimension 1M, 0.1% density); we run every SparCML algorithm plus the
dense baselines, verify they all compute the identical sum, and compare
communication volume and replayed time on a supercomputer-class and a
Gigabit-Ethernet-class network.

Run:  python examples/quickstart.py [--backend thread|process|shmem|socket]

``--backend process`` executes every rank in its own OS process with real
serialized transport over pipes; ``shmem`` moves payloads through
zero-copy shared-memory rings; ``socket`` frames them over a TCP mesh
(the transport that also spans machines via ``python -m repro
serve-rank``) — same algorithms, same results on every backend.
"""

import argparse
import pathlib
import sys

# standalone bootstrap: make src/repro importable without PYTHONPATH
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    ARIES,
    GIGE,
    SparseStream,
    available_backends,
    dense_allreduce,
    replay,
    run_ranks,
    sparse_allreduce,
)
from repro.streams import reduce_streams

DIMENSION = 1 << 20  # 1M coordinates
NNZ = 1000  # ~0.1% density per node
P = 8


def make_contribution(rank: int) -> SparseStream:
    """Each rank's sparse input (seeded: reproducible across runs)."""
    rng = np.random.default_rng(1000 + rank)
    return SparseStream.random_uniform(DIMENSION, nnz=NNZ, rng=rng)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="thread",
        help="runtime backend: thread (in-process), process (pipes), "
             "shmem (shared-memory rings) or socket (TCP mesh)",
    )
    backend = parser.parse_args().backend

    reference = reduce_streams([make_contribution(r) for r in range(P)]).to_dense()

    print(f"P={P} ranks, N={DIMENSION}, k={NNZ} nonzeros/rank "
          f"(d={NNZ / DIMENSION:.3%}), backend={backend}\n")
    header = f"{'algorithm':<20}{'correct':<9}{'MB sent':>9}{'aries':>12}{'gige':>12}"
    print(header)
    print("-" * len(header))

    sparse_algos = ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag", "auto"]
    for algo in sparse_algos:
        def program(comm, algo=algo):
            return sparse_allreduce(comm, make_contribution(comm.rank), algorithm=algo)

        out = run_ranks(program, P, backend=backend)
        correct = all(np.allclose(out[r].to_dense(), reference, atol=1e-4) for r in range(P))
        t_aries = replay(out.trace, ARIES).makespan
        t_gige = replay(out.trace, GIGE).makespan
        print(
            f"{algo:<20}{str(correct):<9}"
            f"{out.trace.total_bytes_sent / 1e6:>9.2f}"
            f"{t_aries * 1e6:>10.1f}us{t_gige * 1e3:>10.2f}ms"
        )

    for algo in ["dense_rec_dbl", "dense_ring", "dense_rabenseifner"]:
        def dense_program(comm, algo=algo):
            return dense_allreduce(comm, make_contribution(comm.rank).to_dense(), algorithm=algo)

        out = run_ranks(dense_program, P, backend=backend)
        correct = all(np.allclose(out[r], reference, atol=1e-4) for r in range(P))
        t_aries = replay(out.trace, ARIES).makespan
        t_gige = replay(out.trace, GIGE).makespan
        print(
            f"{algo:<20}{str(correct):<9}"
            f"{out.trace.total_bytes_sent / 1e6:>9.2f}"
            f"{t_aries * 1e6:>10.1f}us{t_gige * 1e3:>10.2f}ms"
        )

    print("\nAt this density the static-sparse algorithms move ~100x fewer bytes")
    print("than any dense allreduce — the headline effect of the paper.")


if __name__ == "__main__":
    main()
