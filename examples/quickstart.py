#!/usr/bin/env python
"""Quickstart: sparse allreduce vs the dense MPI baseline.

Eight simulated ranks each contribute a sparse gradient-like vector
(dimension 1M, 0.1% density); we run every SparCML algorithm plus the
dense baselines, verify they all compute the identical sum, and compare
communication volume and replayed time on a supercomputer-class and a
Gigabit-Ethernet-class network.

Run:  python examples/quickstart.py [--backend thread|process|shmem|socket]
                                    [--topology 2x4]
                                    [--overlap]
                                    [--fault-plan seed=7,delay=0.2/0.001]
                                    [--op-timeout 5]

``--backend process`` executes every rank in its own OS process with real
serialized transport over pipes; ``shmem`` moves payloads through
zero-copy shared-memory rings; ``socket`` frames them over a TCP mesh
(the transport that also spans machines via ``python -m repro
serve-rank``) — same algorithms, same results on every backend.

``--fault-plan`` injects deterministic faults (message drops, delays, a
rank kill) into the chosen backend's transport — e.g. a pure-delay plan
like ``seed=7,delay=0.2/0.001`` demonstrates that results stay
bit-identical under network jitter, while ``kill=3@4`` shows the typed
:class:`RankFailedError` failure surface. ``--op-timeout`` bounds every
blocked send/recv so a dropped message fails fast instead of hanging.

``--elastic`` (with a ``kill=R@N`` fault plan) demonstrates the elastic
world instead of exiting on the failure: survivors catch the typed error,
``shrink()`` past the dead rank and re-run the allreduce on the smaller
world, printing the post-shrink checksum every survivor agrees on. Add a
``revive=R@N`` clause (thread backend) and the demo also brings the killed
rank back through ``thread_rejoin`` + ``ElasticContext.step()`` and
re-verifies the checksum on the regrown full-size world:

    python examples/quickstart.py --elastic --fault-plan kill=3@4,revive=3@8

``--overlap`` demonstrates the *chunked* non-blocking hierarchy instead:
``ssar_hier`` / ``dsar_hier`` run with ``chunks=K`` so the leaders'
inter-node exchange of chunk k overlaps the intra-host reduce of chunk
k+1. The table verifies every chunk count is bit-identical to the
unchunked algorithm and shows the replayed two-tier time next to the
*predicted* pipelined makespan
(:func:`repro.netsim.replay.overlap_step_time` with ``chunks=K``) for a
step whose compute matches its communication.

``--topology 2x4`` simulates a cluster of 2 hosts x 4 ranks: the table
gains an "MB inter" column (bytes crossing the simulated slow tier), a
"gige-2tier" column (replay under the two-tier GigE preset, where
intra-host links run at shared-memory speed and each host's uplink is
shared — the regime in which hierarchy wins on *time*, not just bytes)
and ``ssar_hier`` / ``dsar_hier`` rows — the topology-aware hierarchical
collectives that reduce intra-host first so only each host's merged
union goes inter-node. On a real two-machine cluster the same algorithms
engage automatically: assemble the world with distinct hostnames via
``python -m repro serve-rank`` (see ROADMAP.md) and the rendezvous host
map becomes ``comm.topology``.
"""

import argparse
import pathlib
import sys

# standalone bootstrap: make src/repro importable without PYTHONPATH
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import (
    ARIES,
    GIGE,
    TIERED_GIGE,
    FaultPlan,
    SparseStream,
    Topology,
    available_backends,
    dense_allreduce,
    inter_node_bytes,
    replay,
    resolve_network,
    run_ranks,
    sparse_allreduce,
)
from repro.runtime import RankError
from repro.streams import reduce_streams

DIMENSION = 1 << 20  # 1M coordinates
NNZ = 1000  # ~0.1% density per node
P = 8


def make_contribution(rank: int) -> SparseStream:
    """Each rank's sparse input (seeded: reproducible across runs)."""
    rng = np.random.default_rng(1000 + rank)
    return SparseStream.random_uniform(DIMENSION, nnz=NNZ, rng=rng)


def _checksum(stream: SparseStream) -> float:
    return float(stream.to_dense().sum())


def _elastic_shrink_prog(comm):
    """Rank program for the --elastic demo: shrink past the kill, re-sum.

    Module-level (not a closure) so the process backend's spawn fallback
    can pickle it into the workers.
    """
    from repro.runtime import RankFailedError

    try:
        # iterate like a training loop so a kill=R@N clause with any
        # trigger threshold eventually fires mid-step
        for _ in range(50):
            sparse_allreduce(
                comm, make_contribution(comm.rank), algorithm="ssar_rec_dbl"
            )
            # the kill may land after this rank already holds its result;
            # the barrier guarantees every survivor observes the dead rank
            comm.barrier()
        return ("clean",)
    except RankFailedError:
        world = comm.shrink()
        out = sparse_allreduce(
            world,
            make_contribution(world.parent_ranks[world.rank]),
            algorithm="ssar_rec_dbl",
        )
        return ("shrunk", world.epoch, world.size, _checksum(out))


def elastic_demo(args, fault_plan) -> None:
    """kill -> typed error -> shrink() -> verified post-shrink checksum.

    With a ``revive=R@N`` clause the demo runs on a hand-built thread
    world instead so the killed rank can come back through
    ``thread_rejoin`` while the survivors commit the join with
    ``ElasticContext.step()``.
    """
    import threading
    import time

    from repro.runtime import (
        ElasticContext,
        RankError,
        RankFailedError,
        RankKilledError,
        ThreadWorld,
        thread_rejoin,
    )
    from repro.runtime.faults import FaultyComm

    victim = fault_plan.kill_rank if fault_plan else None
    if victim is None:
        print("--elastic needs a kill=R@N clause in --fault-plan", file=sys.stderr)
        sys.exit(2)
    expected_shrunk = float(
        reduce_streams(
            [make_contribution(r) for r in range(P) if r != victim]
        ).to_dense().sum()
    )
    expected_full = float(
        reduce_streams([make_contribution(r) for r in range(P)]).to_dense().sum()
    )
    rejoining = fault_plan.revive_rank is not None
    print(
        f"elastic demo: P={P}, kill rank {victim} at op "
        f"{fault_plan.kill_after_ops}, shrink to P={P - 1}"
        + (f", then rejoin rank {fault_plan.revive_rank}" if rejoining else "")
    )

    if not rejoining:
        # any backend: survivors shrink and re-reduce; the run as a whole
        # still reports the victim's death as a typed world-level error
        try:
            run_ranks(
                _elastic_shrink_prog, P, backend=args.backend,
                fault_plan=fault_plan, op_timeout=args.op_timeout,
            )
            print("the kill clause never fired — nothing to demonstrate")
            sys.exit(1)
        except RankError as exc:
            rows = exc.partial_results or [None] * P
            ok = True
            for rank, row in enumerate(rows):
                if rank == victim:
                    print(f"  rank {rank}: killed ({type(exc.__cause__).__name__})")
                    continue
                if not row or row[0] != "shrunk":
                    print(f"  rank {rank}: {row!r}  <- expected a shrunk result")
                    ok = False
                    continue
                _, epoch, size, checksum = row
                match = np.isclose(checksum, expected_shrunk, atol=1e-4)
                ok &= bool(match)
                print(
                    f"  rank {rank}: epoch={epoch} size={size} "
                    f"checksum={checksum:.4f} "
                    f"({'matches' if match else 'MISMATCH vs'} "
                    f"expected {expected_shrunk:.4f})"
                )
            print(
                "\nall survivors agree on the post-shrink sum"
                if ok else "\nchecksum mismatch — elastic demo FAILED"
            )
            sys.exit(0 if ok else 1)

    # revive path: thread backend only (rejoin of an OS process is the
    # serve-rank --rejoin flow; see ROADMAP.md)
    world = ThreadWorld(P, op_timeout=args.op_timeout or 60.0)
    results: dict = {}

    def rank_thread(rank: int) -> None:
        comm = FaultyComm(world.comm(rank), fault_plan)
        try:
            try:
                for _ in range(50):
                    sparse_allreduce(
                        comm, make_contribution(rank), algorithm="ssar_rec_dbl"
                    )
                    comm.barrier()
                results[rank] = ("clean",)
                return
            except RankFailedError:
                pass
            shrunk = comm.shrink()
            out1 = sparse_allreduce(
                shrunk, make_contribution(rank), algorithm="ssar_rec_dbl"
            )
            # poll for the rejoin; step() is collective, so the survivors
            # stay in lockstep until the join commits
            ctx = ElasticContext(shrunk)
            grown = shrunk
            for _ in range(15000):
                grown = ctx.step()
                if grown.size == P:
                    break
                time.sleep(0.002)
            out2 = sparse_allreduce(
                grown,
                make_contribution(grown.parent_ranks[grown.rank]),
                algorithm="ssar_rec_dbl",
            )
            results[rank] = (
                "shrunk+regrown", shrunk.epoch, grown.epoch,
                _checksum(out1), _checksum(out2),
            )
        except RankKilledError:
            world.abort(failed_rank=rank)
            results[rank] = ("killed",)

    def reviver() -> None:
        deadline = time.monotonic() + 60.0
        while victim not in world.dead_ranks:
            if time.monotonic() > deadline:
                results["revived"] = ("victim never declared dead",)
                return
            time.sleep(0.002)
        comm = thread_rejoin(world, victim, timeout=60.0)
        out = sparse_allreduce(
            comm, make_contribution(victim), algorithm="ssar_rec_dbl"
        )
        results["revived"] = ("rejoined", comm.epoch, _checksum(out))

    threads = [
        threading.Thread(target=rank_thread, args=(r,), daemon=True)
        for r in range(P)
    ] + [threading.Thread(target=reviver, daemon=True)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)

    ok = results.get(victim) == ("killed",)
    for rank in range(P):
        if rank == victim:
            print(f"  rank {rank}: killed, later rejoined")
            continue
        row = results.get(rank)
        if not row or row[0] != "shrunk+regrown":
            print(f"  rank {rank}: {row!r}  <- expected shrunk+regrown")
            ok = False
            continue
        _, e1, e2, c1, c2 = row
        match = np.isclose(c1, expected_shrunk, atol=1e-4) and np.isclose(
            c2, expected_full, atol=1e-4
        )
        ok &= bool(match)
        print(
            f"  rank {rank}: epoch {e1}->{e2} shrunk-checksum={c1:.4f} "
            f"regrown-checksum={c2:.4f} ({'match' if match else 'MISMATCH'})"
        )
    revived = results.get("revived")
    if revived and revived[0] == "rejoined":
        match = np.isclose(revived[2], expected_full, atol=1e-4)
        ok &= bool(match)
        print(
            f"  rank {victim} (rejoined): epoch={revived[1]} "
            f"checksum={revived[2]:.4f} ({'match' if match else 'MISMATCH'})"
        )
    else:
        print(f"  rejoin failed: {revived!r}")
        ok = False
    print(
        "\nkill -> shrink -> rejoin cycle verified: the regrown world "
        "computes the full-world sum"
        if ok else "\nelastic demo FAILED"
    )
    sys.exit(0 if ok else 1)


def _chunked_prog(comm, algo: str, chunks: int):
    """Rank program of the --overlap demo (module-level: spawn-safe)."""
    return sparse_allreduce(
        comm, make_contribution(comm.rank), algorithm=algo, chunks=chunks
    )


def overlap_demo(args) -> None:
    """Chunked hierarchy: bit-identity per chunk count + predicted pipeline."""
    from repro.netsim.replay import overlap_step_time

    topology = (
        Topology.from_spec(args.topology) if args.topology
        else Topology.uniform(P, P // 2)
    )
    reference = reduce_streams([make_contribution(r) for r in range(P)]).to_dense()
    print(
        f"overlap demo: chunked hierarchical allreduce on "
        f"{topology.describe()}, backend={args.backend}, P={P}, N={DIMENSION}\n"
    )
    header = (
        f"{'algorithm':<12}{'chunks':>7}{'identical':>11}{'MB inter':>10}"
        f"{'gige-2tier':>12}{'pipelined':>12}"
    )
    print(header)
    print("-" * len(header))
    ok = True
    for algo in ("ssar_hier", "dsar_hier"):
        base = run_ranks(
            _chunked_prog, P, algo, 1, backend=args.backend, topology=topology,
            op_timeout=args.op_timeout,
        )
        base_dense = base[0].to_dense()
        correct = all(
            np.allclose(base[r].to_dense(), reference, atol=1e-4) for r in range(P)
        )
        ok &= correct
        for chunks in (1, 2, 4, 8):
            out = run_ranks(
                _chunked_prog, P, algo, chunks, backend=args.backend,
                topology=topology, op_timeout=args.op_timeout,
            )
            identical = correct and all(
                np.array_equal(out[r].to_dense(), base_dense) for r in range(P)
            )
            ok &= identical
            t_tiered = replay(out.trace, TIERED_GIGE, topology=topology).makespan
            # predicted step time when compute matches communication: the
            # chunked pipeline approaches max(compute, comm) from above
            predicted = overlap_step_time(t_tiered, t_tiered, True, chunks)
            print(
                f"{algo:<12}{chunks:>7}{str(identical):>11}"
                f"{inter_node_bytes(out.trace, topology) / 1e6:>10.2f}"
                f"{t_tiered * 1e3:>10.2f}ms{predicted * 1e3:>10.2f}ms"
            )
    print(
        "\nEvery chunked run is bit-identical to its unchunked algorithm; the"
        "\npipelined column is the predicted step time once the leaders'"
        "\ninter-node exchange hides behind the next chunk's intra-host reduce."
        if ok else "\nchunked results diverged — overlap demo FAILED"
    )
    sys.exit(0 if ok else 1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="thread",
        help="runtime backend: thread (in-process), process (pipes), "
             "shmem (shared-memory rings) or socket (TCP mesh)",
    )
    parser.add_argument(
        "--topology", default=None, metavar="HxR",
        help="simulate a cluster of H hosts x R ranks (e.g. 2x4; HxR must "
             "equal the 8-rank world) and show hierarchical allreduce",
    )
    parser.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help="inject deterministic transport faults, e.g. "
             "'seed=7,delay=0.2/0.001' (jitter: results stay identical) or "
             "'kill=3@4' (typed RankFailedError failure surface)",
    )
    parser.add_argument(
        "--op-timeout", type=float, default=None, metavar="SECONDS",
        help="per-operation send/recv deadline: a stalled or dropped message "
             "raises CommTimeoutError instead of hanging the run",
    )
    parser.add_argument(
        "--elastic", action="store_true",
        help="with a kill=R@N fault plan: survivors shrink() past the dead "
             "rank and verify the post-shrink checksum; add revive=R@N "
             "(thread backend) to also rejoin the killed rank",
    )
    parser.add_argument(
        "--network", default="tiered:gige", metavar="SPEC",
        help="replay model for the topology column: a preset name, a "
             "'tiered:INTRA/INTER' spec, or 'calibrated:<path.json>' "
             "written by `python -m repro calibrate` — e.g. "
             "--network calibrated:results/calibrated_network.json replays "
             "under the model fitted on this machine (default: tiered:gige)",
    )
    parser.add_argument(
        "--overlap", action="store_true",
        help="demo the chunked non-blocking hierarchy instead: ssar_hier/"
             "dsar_hier at several chunk counts, verified bit-identical to "
             "the unchunked run, with the predicted pipelined makespan",
    )
    args = parser.parse_args()
    if args.overlap:
        overlap_demo(args)
        return
    backend = args.backend
    topology = Topology.from_spec(args.topology) if args.topology else None
    fault_plan = FaultPlan.from_spec(args.fault_plan) if args.fault_plan else None
    if fault_plan:
        print(f"fault injection active: {fault_plan.describe()}\n")
    if args.elastic:
        elastic_demo(args, fault_plan)
        return

    reference = reduce_streams([make_contribution(r) for r in range(P)]).to_dense()

    topo_note = f", topology={topology.describe()}" if topology else ""
    print(f"P={P} ranks, N={DIMENSION}, k={NNZ} nonzeros/rank "
          f"(d={NNZ / DIMENSION:.3%}), backend={backend}{topo_note}\n")
    tiered_model = resolve_network(args.network)
    tier_label = "gige-2tier" if args.network == "tiered:gige" else tiered_model.name[:10]
    inter_col = f"{'MB inter':>10}" if topology else ""
    tier_col = f"{tier_label:>12}" if topology else ""
    header = (
        f"{'algorithm':<20}{'correct':<9}{'MB sent':>9}{inter_col}"
        f"{'aries':>12}{'gige':>12}{tier_col}"
    )
    print(header)
    print("-" * len(header))

    def report(algo, out, correct):
        t_aries = replay(out.trace, ARIES).makespan
        t_gige = replay(out.trace, GIGE).makespan
        inter = (
            f"{inter_node_bytes(out.trace, topology) / 1e6:>10.2f}" if topology else ""
        )
        tiered = (
            f"{replay(out.trace, tiered_model, topology=topology).makespan * 1e3:>10.2f}ms"
            if topology
            else ""
        )
        print(
            f"{algo:<20}{str(correct):<9}"
            f"{out.trace.total_bytes_sent / 1e6:>9.2f}{inter}"
            f"{t_aries * 1e6:>10.1f}us{t_gige * 1e3:>10.2f}ms{tiered}"
        )

    def launch(prog):
        try:
            return run_ranks(
                prog, P, backend=backend, topology=topology,
                op_timeout=args.op_timeout, fault_plan=fault_plan,
            )
        except RankError as exc:
            cause = exc.__cause__
            print(f"\nrank failure under injection: {type(cause).__name__}: {cause}")
            sys.exit(1)

    sparse_algos = ["ssar_rec_dbl", "ssar_split_ag", "ssar_ring", "dsar_split_ag"]
    if topology:
        sparse_algos.extend(["ssar_hier", "dsar_hier"])
    sparse_algos.append("auto")
    for algo in sparse_algos:
        def program(comm, algo=algo):
            return sparse_allreduce(comm, make_contribution(comm.rank), algorithm=algo)

        out = launch(program)
        correct = all(np.allclose(out[r].to_dense(), reference, atol=1e-4) for r in range(P))
        report(algo, out, correct)

    for algo in ["dense_rec_dbl", "dense_ring", "dense_rabenseifner"]:
        def dense_program(comm, algo=algo):
            return dense_allreduce(comm, make_contribution(comm.rank).to_dense(), algorithm=algo)

        out = launch(dense_program)
        correct = all(np.allclose(out[r], reference, atol=1e-4) for r in range(P))
        report(algo, out, correct)

    print("\nAt this density the static-sparse algorithms move ~100x fewer bytes")
    print("than any dense allreduce — the headline effect of the paper.")
    if topology:
        print("With a multi-rank multi-host topology, ssar_hier (what 'auto' now")
        print("picks) also moves the fewest bytes across the slow inter-host tier,")
        print("and the gige-2tier column shows the payoff in replayed *time*: under")
        print("the two-tier model each host's shared uplink serializes concurrent")
        print("inter-node sends, so the hierarchical schedules come out fastest.")


if __name__ == "__main__":
    main()
