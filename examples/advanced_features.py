#!/usr/bin/env python
"""Tour of the library's secondary features (paper §5.2, §7, §8.4, §9).

1. arbitrary reduction operations over sparse streams (max shown),
2. tensor fusion: coalescing layer gradients into communication buckets,
3. asynchronous (pipelined) aggregation in MPI-OPT,
4. on-disk dataset partitioning (the MPI-IO stand-in),
5. momentum correction + warm-up (the DGC techniques of §8.4).

Run:  python examples/advanced_features.py
"""

import tempfile

import numpy as np

from repro import GIGE, SparseStream, replay, run_ranks, sparse_allreduce
from repro.core import DGCConfig, GradientFuser, dgc_sgd
from repro.mlopt import (
    LogisticRegression,
    SGDConfig,
    distributed_sgd,
    distributed_sgd_async,
    load_shard,
    make_url_like,
    save_dataset,
)
from repro.nn import make_mlp

P = 4


def demo_reduce_ops() -> None:
    print("=== 1. reduction operations (sparse max) ===")

    def prog(comm):
        gen = np.random.default_rng(comm.rank)
        idx = gen.choice(10_000, size=100, replace=False)
        vals = np.abs(gen.standard_normal(100)).astype(np.float32)
        s = SparseStream(10_000, indices=idx, values=vals)
        return sparse_allreduce(comm, s, algorithm="ssar_rec_dbl", op="max")

    out = run_ranks(prog, P)
    print(f"element-wise max over {P} ranks: K={out[0].nnz} nonzeros, "
          f"max value {out[0].values.max():.3f}\n")


def demo_tensor_fusion() -> None:
    print("=== 2. tensor fusion ===")
    net = make_mlp(512, 10, hidden=(128, 64, 32), seed=0)
    for threshold, label in ((0, "layer-wise"), (1 << 16, "fused 64KB"), (1 << 30, "whole model")):
        fuser = GradientFuser.from_network(net, min_bucket_bytes=threshold)

        def prog(comm, fuser=fuser):
            efs = fuser.make_error_feedback(k=8, bucket_size=512)
            grad = np.random.default_rng(comm.rank).standard_normal(net.n_params).astype(np.float32)
            fuser.fused_topk_allreduce(comm, grad, efs, algorithm="ssar_rec_dbl")
            return None

        out = run_ranks(prog, P)
        t = replay(out.trace, GIGE).makespan
        print(f"  {label:12s}: {fuser.n_buckets:2d} buckets, "
              f"{out.trace.total_messages:4d} messages, GigE {t * 1e3:6.2f}ms")
    print()


def demo_async_aggregation() -> None:
    print("=== 3. asynchronous (pipelined) aggregation ===")
    ds = make_url_like(scale=0.004, n_samples=400)
    cfg = SGDConfig(epochs=2, batch_size=25, lr=0.5, mode="sparse")

    sync = run_ranks(
        lambda c: distributed_sgd(c, ds, LogisticRegression(ds.n_features, 1e-5), cfg), P
    )
    asyn = run_ranks(
        lambda c: distributed_sgd_async(c, ds, LogisticRegression(ds.n_features, 1e-5), cfg), P
    )
    drift = np.linalg.norm(sync[0].params - asyn[0].params) / np.linalg.norm(sync[0].params)
    print(f"  sync loss {sync[0].final_loss:.4f} vs async loss {asyn[0].final_loss:.4f} "
          f"(parameter drift {drift:.1%} from 1-step staleness)\n")


def demo_disk_partitioning() -> None:
    print("=== 4. on-disk dataset partitioning ===")
    ds = make_url_like(scale=0.004, n_samples=400)
    with tempfile.TemporaryDirectory() as tmp:
        save_dataset(tmp, ds)
        shards = [load_shard(tmp, r, P) for r in range(P)]
        print(f"  wrote {ds.n_samples}x{ds.n_features}; each of {P} ranks maps only "
              f"its shard: {[s.n_samples for s in shards]} rows\n")


def demo_dgc() -> None:
    print("=== 5. momentum correction + warm-up (DGC, §8.4) ===")
    dim = 256
    centre = np.random.default_rng(3).standard_normal(dim)

    def grad_fn_for(rank):
        g = np.random.default_rng(rank)

        def fn(params, step):
            return ((params - centre) / P + g.standard_normal(dim) * 0.02).astype(np.float32)

        return fn

    cfg = DGCConfig(k=4, bucket_size=64, lr=0.1, momentum=0.5, warmup_steps=30, lr_decay=0.02)
    out = run_ranks(lambda c: dgc_sgd(c, grad_fn_for(c.rank), dim, 200, cfg), P)
    err = np.linalg.norm(out[0].params - centre) / np.linalg.norm(centre)
    first, last = out[0].bytes_sent_per_step[0], out[0].bytes_sent_per_step[-1]
    print(f"  converged to {err:.1%} of ||x*||; warm-up sent {first}B/step early "
          f"vs {last}B/step at steady state")


if __name__ == "__main__":
    demo_reduce_ops()
    demo_tensor_fusion()
    demo_async_aggregation()
    demo_disk_partitioning()
    demo_dgc()
