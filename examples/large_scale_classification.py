#!/usr/bin/env python
"""Large-scale sparse classification with MPI-OPT (paper §8.2, Table 2).

Trains logistic regression on a URL-reputation-like high-dimensional
sparse dataset with data-parallel SGD, comparing three communication
layers on identical computations:

* SparCML sparse allreduce (lossless: exploits natural gradient sparsity),
* the dense MPI allreduce baseline,
* a Spark-like coordinator (treeAggregate + broadcast) baseline.

All three produce the *same* trained model; only the bytes moved and the
replayed wall-clock differ.

Run:  python examples/large_scale_classification.py
"""

import numpy as np

from repro import GIGE, IB_FDR, replay, run_ranks
from repro.frameworks import coordinator_allreduce
from repro.mlopt import LogisticRegression, SGDConfig, distributed_sgd, make_url_like
from repro.mlopt.datasets import partition_rows

P = 8
EPOCHS = 3


def main() -> None:
    dataset = make_url_like(scale=0.01, n_samples=1200)
    print(
        f"url-like dataset: {dataset.n_samples} samples x {dataset.n_features} features, "
        f"{dataset.mean_nnz_per_sample:.0f} nnz/sample ({dataset.density:.2e} density)\n"
    )

    def sgd_program(comm, mode, algorithm):
        model = LogisticRegression(dataset.n_features, reg=1e-5)
        cfg = SGDConfig(epochs=EPOCHS, batch_size=100, lr=1.0, mode=mode, algorithm=algorithm)
        return distributed_sgd(comm, dataset, model, cfg)

    def spark_like_program(comm):
        """Same SGD but through the coordinator layer (dense, no sparsity)."""
        model = LogisticRegression(dataset.n_features, reg=1e-5)
        shard = partition_rows(dataset.n_samples, comm.size, comm.rank)
        X, y = dataset.X[shard], dataset.y[shard]
        rng = np.random.default_rng(comm.rank)
        w = np.zeros(dataset.n_features)
        steps = max(1, X.shape[0] // 100)
        for _ in range(EPOCHS):
            for _ in range(steps):
                rows = rng.choice(X.shape[0], size=min(100, X.shape[0]), replace=False)
                comm.mark("compute")
                comm.compute(int(X[rows].nnz) * 16, "grad")
                grad = model.grad_stream(w, X[rows], y[rows]).to_dense()
                total = coordinator_allreduce(comm, grad)
                comm.mark("compute")
                model.apply_regularization(w, 1.0)
                w -= (1.0 / comm.size) * total.astype(np.float64)
        return model.loss(w, dataset.X, dataset.y)

    runs = {
        "sparcml (sparse)": run_ranks(sgd_program, P, "sparse", "auto"),
        "mpi (dense)": run_ranks(sgd_program, P, "dense", "dense_rabenseifner"),
        "spark-like": run_ranks(spark_like_program, P),
    }

    header = (
        f"{'layer':<18}{'final loss':>11}{'MB sent':>9}"
        f"{'IB total':>11}{'IB comm':>11}{'GigE total':>12}{'GigE comm':>12}"
    )
    print(header)
    print("-" * len(header))
    times = {}
    for name, out in runs.items():
        loss = out[0].final_loss if hasattr(out[0], "final_loss") else out[0]
        total_ib = replay(out.trace, IB_FDR).makespan
        comm_ib = replay(out.trace, IB_FDR.with_(gamma=0.0)).makespan
        total_ge = replay(out.trace, GIGE).makespan
        comm_ge = replay(out.trace, GIGE.with_(gamma=0.0)).makespan
        times[name] = total_ge
        print(
            f"{name:<18}{loss:>11.4f}{out.trace.total_bytes_sent / 1e6:>9.1f}"
            f"{total_ib * 1e3:>9.1f}ms{comm_ib * 1e3:>9.1f}ms"
            f"{total_ge * 1e3:>10.1f}ms{comm_ge * 1e3:>10.1f}ms"
        )

    print(
        f"\nGigE end-to-end speedup of SparCML: "
        f"{times['mpi (dense)'] / times['sparcml (sparse)']:.1f}x over dense MPI, "
        f"{times['spark-like'] / times['sparcml (sparse)']:.1f}x over the coordinator layer"
    )


if __name__ == "__main__":
    main()
